package tools

import (
	"atom/internal/core"
)

// branch: evaluates branch prediction using a 2-bit saturating-counter
// history table, one entry per static conditional branch (paper Figure 5:
// "prediction using 2-bit history table"; instruments each conditional
// branch with 3 arguments).
func init() {
	register(core.Tool{
		Name:        "branch",
		Description: "branch prediction using 2-bit history table",
		Analysis: map[string]string{
			"branch_anal.c": `
#include <stdio.h>
#include <stdlib.h>

struct BrEntry {
	long state;   /* 2-bit counter: 0,1 predict not-taken; 2,3 taken */
	long taken;
	long notTaken;
	long mispred;
	long pc;
};
struct BrEntry *br;
long nbr;

void BrInit(long n) {
	br = (struct BrEntry *) calloc(n, sizeof(struct BrEntry));
	nbr = n;
	/* weakly not-taken initial state */
	long i;
	for (i = 0; i < n; i++) br[i].state = 1;
}

void BrDone(void) {
	FILE *f = fopen("branch.out", "w");
	long i;
	long execs = 0;
	long miss = 0;
	long live = 0;
	for (i = 0; i < nbr; i++) {
		long t = br[i].taken + br[i].notTaken;
		if (t == 0) continue;
		live++;
		execs += t;
		miss += br[i].mispred;
	}
	fprintf(f, "static branches: %d\n", nbr);
	fprintf(f, "executed branches: %d\n", live);
	fprintf(f, "dynamic branches: %d\n", execs);
	fprintf(f, "mispredictions: %d\n", miss);
	if (execs > 0)
		fprintf(f, "accuracy: %d/1000\n", (execs - miss) * 1000 / execs);
	fprintf(f, "PC\ttaken\tnot-taken\tmispredicted\n");
	for (i = 0; i < nbr; i++) {
		if (br[i].taken + br[i].notTaken == 0) continue;
		fprintf(f, "0x%x\t%d\t%d\t%d\n", br[i].pc, br[i].taken, br[i].notTaken, br[i].mispred);
	}
	fclose(f);
}
`,
			// The per-event routine is hand-scheduled assembly, standing
			// in for the optimizing compiler the paper's analysis code
			// was built with. Layout matches struct BrEntry above:
			// state/taken/notTaken/mispred/pc at offsets 0/8/16/24/32.
			"branch_fast.s": `
	.text
	.globl BrBranch
	.ent BrBranch
BrBranch:
	la t0, br
	ldq t0, 0(t0)
	mulq a0, 40, t1
	addq t0, t1, t0		# e = &br[n]
	stq a2, 32(t0)		# e->pc = pc
	ldq t1, 0(t0)		# state
	beq a1, .Lnottaken
	ldq t2, 8(t0)		# e->taken++
	addq t2, 1, t2
	stq t2, 8(t0)
	cmplt t1, 2, t2		# predicted not-taken? mispredict
	beq t2, .Lsat_up
	ldq t3, 24(t0)
	addq t3, 1, t3
	stq t3, 24(t0)
.Lsat_up:
	cmplt t1, 3, t2
	beq t2, .Ldone
	addq t1, 1, t1
	stq t1, 0(t0)
	ret (ra)
.Lnottaken:
	ldq t2, 16(t0)		# e->notTaken++
	addq t2, 1, t2
	stq t2, 16(t0)
	cmple t1, 1, t2		# predicted taken? mispredict
	bne t2, .Lsat_down
	ldq t3, 24(t0)
	addq t3, 1, t3
	stq t3, 24(t0)
.Lsat_down:
	ble t1, .Ldone
	subq t1, 1, t1
	stq t1, 0(t0)
.Ldone:
	ret (ra)
	.end BrBranch
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("BrInit(int)"); err != nil {
				return err
			}
			if err := q.AddCallProto("BrBranch(int, VALUE, long)"); err != nil {
				return err
			}
			if err := q.AddCallProto("BrDone()"); err != nil {
				return err
			}
			n := 0
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					inst := q.GetLastInst(b)
					if !q.IsInstType(inst, core.InstTypeCondBr) {
						continue
					}
					if err := q.AddCallInst(inst, core.InstBefore, "BrBranch",
						n, core.BrCondValue, int64(q.InstPC(inst))); err != nil {
						return err
					}
					n++
				}
			}
			if err := q.AddCallProgram(core.ProgramBefore, "BrInit", n); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramAfter, "BrDone")
		},
	})
}

// dyninst: computes dynamic instruction counts by instrumenting each
// basic block with 3 arguments (block id, size, pc).
func init() {
	register(core.Tool{
		Name:        "dyninst",
		Description: "computes dynamic instruction counts",
		Analysis: map[string]string{
			"dyninst_anal.c": `
#include <stdio.h>
#include <stdlib.h>

long *counts;
long *sizes;
long *pcs;
long nblocks;

void DynInit(long n) {
	counts = (long *) calloc(n, sizeof(long));
	sizes = (long *) calloc(n, sizeof(long));
	pcs = (long *) calloc(n, sizeof(long));
	nblocks = n;
}

void DynDone(void) {
	FILE *f = fopen("dyninst.out", "w");
	long total = 0;
	long blocks = 0;
	long i;
	for (i = 0; i < nblocks; i++) {
		total += counts[i] * sizes[i];
		blocks += counts[i];
	}
	fprintf(f, "static blocks: %d\n", nblocks);
	fprintf(f, "dynamic blocks: %d\n", blocks);
	fprintf(f, "dynamic instructions: %d\n", total);
	fprintf(f, "PC\texecs\tinsts\n");
	for (i = 0; i < nblocks; i++) {
		if (counts[i] == 0) continue;
		fprintf(f, "0x%x\t%d\t%d\n", pcs[i], counts[i], counts[i] * sizes[i]);
	}
	fclose(f);
}
`,
			"dyninst_fast.s": `
	.text
	.globl DynBlock
	.ent DynBlock
DynBlock:
	la t0, counts
	ldq t0, 0(t0)
	s8addq a0, t0, t0	# &counts[id]
	ldq t1, 0(t0)
	addq t1, 1, t1
	stq t1, 0(t0)
	la t0, sizes
	ldq t0, 0(t0)
	s8addq a0, t0, t0
	stq a1, 0(t0)
	la t0, pcs
	ldq t0, 0(t0)
	s8addq a0, t0, t0
	stq a2, 0(t0)
	ret (ra)
	.end DynBlock
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("DynInit(int)"); err != nil {
				return err
			}
			if err := q.AddCallProto("DynBlock(int, int, long)"); err != nil {
				return err
			}
			if err := q.AddCallProto("DynDone()"); err != nil {
				return err
			}
			id := 0
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					ninst := 0
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						ninst++
					}
					first := q.GetFirstInst(b)
					if err := q.AddCallBlock(b, core.BlockBefore, "DynBlock",
						id, ninst, int64(q.InstPC(first))); err != nil {
						return err
					}
					id++
				}
			}
			if err := q.AddCallProgram(core.ProgramBefore, "DynInit", id); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramAfter, "DynDone")
		},
	})
}
