package tools

import (
	"strconv"

	"atom/internal/core"
)

// cache: models a direct-mapped 8 KB data cache with 32-byte lines by
// instrumenting every load and store with the effective address (paper
// Figure 5: "model direct mapped 8k byte cache"; one argument per
// reference). Tool arguments override the geometry: arg0 = cache bytes,
// arg1 = line bytes — used by the cache-sweep example and benches.
func init() {
	register(core.Tool{
		Name:        "cache",
		Description: "model direct mapped 8k byte cache",
		Analysis: map[string]string{
			"cache_anal.c": `
#include <stdio.h>
#include <stdlib.h>

long *tags;
long nlines;
long lineshift;
long hits;
long misses;
long cachebytes;
long linebytes;

void CacheInit(long cbytes, long lbytes) {
	cachebytes = cbytes;
	linebytes = lbytes;
	nlines = cbytes / lbytes;
	lineshift = 0;
	while ((1 << lineshift) < lbytes) lineshift++;
	tags = (long *) malloc(nlines * sizeof(long));
	long i;
	for (i = 0; i < nlines; i++) tags[i] = -1;
}

void CacheDone(void) {
	FILE *f = fopen("cache.out", "w");
	long refs = hits + misses;
	fprintf(f, "cache: %d bytes, %d-byte lines, direct mapped\n", cachebytes, linebytes);
	fprintf(f, "references: %d\n", refs);
	fprintf(f, "hits: %d\n", hits);
	fprintf(f, "misses: %d\n", misses);
	if (refs > 0)
		fprintf(f, "miss rate: %d/10000\n", misses * 10000 / refs);
	fclose(f);
}
`,
			"cache_fast.s": `
	.text
	.globl CacheRef
	.ent CacheRef
CacheRef:
	la t0, lineshift
	ldq t1, 0(t0)
	srl a0, t1, t1		# line
	la t0, nlines
	ldq t2, 0(t0)
	subq t2, 1, t2
	and t1, t2, t2		# idx
	la t0, tags
	ldq t0, 0(t0)
	s8addq t2, t0, t2	# &tags[idx]
	ldq t3, 0(t2)
	subq t3, t1, t3
	bne t3, .Lmiss
	la t0, hits
	ldq t3, 0(t0)
	addq t3, 1, t3
	stq t3, 0(t0)
	ret (ra)
.Lmiss:
	stq t1, 0(t2)
	la t0, misses
	ldq t3, 0(t0)
	addq t3, 1, t3
	stq t3, 0(t0)
	ret (ra)
	.end CacheRef
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("CacheInit(long, long)"); err != nil {
				return err
			}
			if err := q.AddCallProto("CacheRef(VALUE)"); err != nil {
				return err
			}
			if err := q.AddCallProto("CacheDone()"); err != nil {
				return err
			}
			cacheBytes, lineBytes := int64(8192), int64(32)
			if a := q.Args(); len(a) >= 1 {
				if v, err := strconv.ParseInt(a[0], 0, 64); err == nil && v > 0 {
					cacheBytes = v
				}
			}
			if a := q.Args(); len(a) >= 2 {
				if v, err := strconv.ParseInt(a[1], 0, 64); err == nil && v > 0 {
					lineBytes = v
				}
			}
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						if q.IsInstType(in, core.InstTypeLoad) || q.IsInstType(in, core.InstTypeStore) {
							if err := q.AddCallInst(in, core.InstBefore, "CacheRef", core.EffAddrValue); err != nil {
								return err
							}
						}
					}
				}
			}
			if err := q.AddCallProgram(core.ProgramBefore, "CacheInit", cacheBytes, lineBytes); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramAfter, "CacheDone")
		},
	})
}

// unalign: reports memory references whose effective address is not
// naturally aligned. Stack- and zero-based references are statically
// aligned in compiled code and are skipped, as the original tool skipped
// references it could prove aligned; that selectivity is why its
// overhead sits near the block-counting tools in Figure 6 rather than
// near cache.
func init() {
	register(core.Tool{
		Name:        "unalign",
		Description: "unaligned access tool",
		Analysis: map[string]string{
			"unalign_anal.c": `
#include <stdio.h>

long checked;
long unaligned;
long lastpc;

void UnalignDone(void) {
	FILE *f = fopen("unalign.out", "w");
	fprintf(f, "checked references: %d\n", checked);
	fprintf(f, "unaligned references: %d\n", unaligned);
	if (unaligned > 0)
		fprintf(f, "last unaligned pc: 0x%x\n", lastpc);
	fclose(f);
}
`,
			"unalign_fast.s": `
	.text
	.globl UnalignRef
	.ent UnalignRef
UnalignRef:
	la t0, checked
	ldq t1, 0(t0)
	addq t1, 1, t1
	stq t1, 0(t0)
	subq a1, 1, t1
	and a0, t1, t1
	beq t1, .Laligned
	la t0, unaligned
	ldq t1, 0(t0)
	addq t1, 1, t1
	stq t1, 0(t0)
	la t0, lastpc
	stq a2, 0(t0)
.Laligned:
	ret (ra)
	.end UnalignRef
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("UnalignRef(VALUE, int, long)"); err != nil {
				return err
			}
			if err := q.AddCallProto("UnalignDone()"); err != nil {
				return err
			}
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						sz := q.InstMemBytes(in)
						if sz <= 1 {
							continue
						}
						if !q.IsInstType(in, core.InstTypeLoad) && !q.IsInstType(in, core.InstTypeStore) {
							continue
						}
						if q.InstBaseIsAligned(in) {
							continue
						}
						if err := q.AddCallInst(in, core.InstBefore, "UnalignRef",
							core.EffAddrValue, sz, int64(q.InstPC(in))); err != nil {
							return err
						}
					}
				}
			}
			return q.AddCallProgram(core.ProgramAfter, "UnalignDone")
		},
	})
}
