package tools

import (
	"fmt"

	"atom/internal/alpha"
	"atom/internal/core"
)

// io: input/output summary — instruments entry to and return from the
// write routine (paper Figure 5: "input/output summary tool";
// before/after the write procedure, 4 arguments).
func init() {
	register(core.Tool{
		Name:        "io",
		Description: "input/output summary tool",
		Analysis: map[string]string{
			"io_anal.c": `
#include <stdio.h>

static long writeCalls;
static long writeReq;
static long writeDone;
static long readCalls;
static long readReq;
static long readDone;

void IoWrite(long fd, long buf, long len, long pc) {
	writeCalls++;
	writeReq += len;
}

void IoWriteRet(long ret) {
	if (ret > 0) writeDone += ret;
}

void IoRead(long fd, long buf, long len, long pc) {
	readCalls++;
	readReq += len;
}

void IoReadRet(long ret) {
	if (ret > 0) readDone += ret;
}

void IoDone(void) {
	FILE *f = fopen("io.out", "w");
	fprintf(f, "write calls: %d\n", writeCalls);
	fprintf(f, "bytes requested: %d\n", writeReq);
	fprintf(f, "bytes written: %d\n", writeDone);
	fprintf(f, "read calls: %d\n", readCalls);
	fprintf(f, "bytes requested (read): %d\n", readReq);
	fprintf(f, "bytes read: %d\n", readDone);
	fclose(f);
}
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			for _, pr := range []string{
				"IoWrite(REGV, REGV, REGV, long)", "IoWriteRet(REGV)",
				"IoRead(REGV, REGV, REGV, long)", "IoReadRet(REGV)",
				"IoDone()",
			} {
				if err := q.AddCallProto(pr); err != nil {
					return err
				}
			}
			hook := func(proc, enter, leave string) error {
				for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
					if q.ProcName(p) != proc {
						continue
					}
					if err := q.AddCallProc(p, core.ProcBefore, enter,
						core.RegV(alpha.A0), core.RegV(alpha.A1), core.RegV(alpha.A2), int64(q.ProcPC(p))); err != nil {
						return err
					}
					return q.AddCallProc(p, core.ProcAfter, leave, core.RegV(alpha.V0))
				}
				return fmt.Errorf("io tool: application has no %q procedure", proc)
			}
			if err := hook("__sys_write", "IoWrite", "IoWriteRet"); err != nil {
				return err
			}
			if err := hook("__sys_read", "IoRead", "IoReadRet"); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramAfter, "IoDone")
		},
	})
}

// malloc: histogram of dynamic-memory request sizes — instruments entry
// to malloc (paper Figure 5: "histogram of dynamic memory"; before/after
// the malloc procedure, 1 argument).
func init() {
	register(core.Tool{
		Name:        "malloc",
		Description: "histogram of dynamic memory",
		Analysis: map[string]string{
			"malloc_anal.c": `
#include <stdio.h>

/* log2 buckets: <=16, <=32, ..., <=2^20, larger */
static long buckets[18];
static long calls;
static long total;

void MlCall(long size) {
	calls++;
	total += size;
	long b = 0;
	long cap = 16;
	while (size > cap && b < 17) { cap = cap * 2; b++; }
	buckets[b]++;
}

void MlDone(void) {
	FILE *f = fopen("malloc.out", "w");
	fprintf(f, "malloc calls: %d\n", calls);
	fprintf(f, "bytes requested: %d\n", total);
	fprintf(f, "size-class\tcount\n");
	long cap = 16;
	long b;
	for (b = 0; b < 18; b++) {
		if (buckets[b]) {
			if (b < 17) fprintf(f, "<=%d\t%d\n", cap, buckets[b]);
			else fprintf(f, ">%d\t%d\n", cap / 2, buckets[b]);
		}
		cap = cap * 2;
	}
	fclose(f);
}
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("MlCall(REGV)"); err != nil {
				return err
			}
			if err := q.AddCallProto("MlDone()"); err != nil {
				return err
			}
			found := false
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				if q.ProcName(p) != "malloc" {
					continue
				}
				if err := q.AddCallProc(p, core.ProcBefore, "MlCall", core.RegV(alpha.A0)); err != nil {
					return err
				}
				found = true
			}
			if !found {
				return fmt.Errorf("malloc tool: application has no malloc procedure")
			}
			return q.AddCallProgram(core.ProgramAfter, "MlDone")
		},
	})
}

// syscall: counts system calls by PAL function, instrumenting each
// CALL_PAL site (paper Figure 5: "system call summary tool"; before/after
// each system call, 2 arguments).
func init() {
	register(core.Tool{
		Name:        "syscall",
		Description: "system call summary tool",
		Analysis: map[string]string{
			"syscall_anal.c": `
#include <stdio.h>

static long counts[16];
static long rets[16];

void ScEnter(long fn, long pc) {
	if (fn >= 0 && fn < 16) counts[fn]++;
}

void ScLeave(long fn, long ret) {
	if (fn >= 0 && fn < 16 && ret >= 0) rets[fn]++;
}

void ScDone(void) {
	FILE *f = fopen("syscall.out", "w");
	char *names[8];
	names[0] = "exit"; names[1] = "write"; names[2] = "read"; names[3] = "open";
	names[4] = "close"; names[5] = "sbrk"; names[6] = "cycles"; names[7] = "sbrk2";
	fprintf(f, "syscall\tcalls\tok\n");
	long i;
	for (i = 0; i < 8; i++) {
		if (counts[i] == 0) continue;
		fprintf(f, "%s\t%d\t%d\n", names[i], counts[i], rets[i]);
	}
	fclose(f);
}
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			for _, pr := range []string{"ScEnter(int, long)", "ScLeave(int, REGV)", "ScDone()"} {
				if err := q.AddCallProto(pr); err != nil {
					return err
				}
			}
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						if !q.IsInstType(in, core.InstTypePal) {
							continue
						}
						fn := int64(q.InstPalFn(in))
						if err := q.AddCallInst(in, core.InstBefore, "ScEnter", fn, int64(q.InstPC(in))); err != nil {
							return err
						}
						if fn != int64(alpha.PalHalt) {
							if err := q.AddCallInst(in, core.InstAfter, "ScLeave", fn, core.RegV(alpha.V0)); err != nil {
								return err
							}
						}
					}
				}
			}
			return q.AddCallProgram(core.ProgramAfter, "ScDone")
		},
	})
}
