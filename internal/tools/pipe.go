package tools

import (
	"atom/internal/alpha"
	"atom/internal/core"
	"atom/internal/om"
)

// pipe: pipeline stall accounting. At instrumentation time the tool
// statically schedules each basic block on a dual-issue in-order pipeline
// model (the paper: "The pipe tool does static CPU pipeline scheduling
// for each basic block at instrumentation time and takes more time to
// instrument"); at run time each block contributes its scheduled cycle
// count, giving total cycles, stalls, and a CPI estimate.
func init() {
	register(core.Tool{
		Name:        "pipe",
		Description: "pipeline stall tool",
		Analysis: map[string]string{
			"pipe_anal.c": `
#include <stdio.h>

long cycles;
long insts;
long blocks;

void PipeDone(void) {
	FILE *f = fopen("pipe.out", "w");
	fprintf(f, "dynamic blocks: %d\n", blocks);
	fprintf(f, "dynamic instructions: %d\n", insts);
	fprintf(f, "modeled cycles: %d\n", cycles);
	fprintf(f, "stall cycles: %d\n", cycles - (insts + 1) / 2);
	if (insts > 0)
		fprintf(f, "cpi: %d/1000\n", cycles * 1000 / insts);
	fclose(f);
}
`,
			"pipe_fast.s": `
	.text
	.globl PipeBlock
	.ent PipeBlock
PipeBlock:
	la t0, cycles
	ldq t1, 0(t0)
	addq t1, a0, t1
	stq t1, 0(t0)
	la t0, insts
	ldq t1, 0(t0)
	addq t1, a1, t1
	stq t1, 0(t0)
	la t0, blocks
	ldq t1, 0(t0)
	addq t1, 1, t1
	stq t1, 0(t0)
	ret (ra)
	.end PipeBlock
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			if err := q.AddCallProto("PipeBlock(int, int)"); err != nil {
				return err
			}
			if err := q.AddCallProto("PipeDone()"); err != nil {
				return err
			}
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					cycles, n := ScheduleBlock(q, b)
					if err := q.AddCallBlock(b, core.BlockBefore, "PipeBlock", cycles, n); err != nil {
						return err
					}
				}
			}
			return q.AddCallProgram(core.ProgramAfter, "PipeDone")
		},
	})
}

// Operation latencies for the pipeline model, loosely following the
// 21064: loads 3 cycles, 32-bit multiply 8, 64-bit multiply and umulh
// 12, everything else 1.
func latency(op alpha.Op) int64 {
	switch {
	case op.IsLoad():
		return 3
	case op == alpha.OpMull:
		return 8
	case op == alpha.OpMulq, op == alpha.OpUmulh:
		return 12
	}
	return 1
}

// ScheduleBlock statically schedules one basic block on a dual-issue
// in-order machine: up to two instructions issue per cycle, at most one
// of them a memory operation and at most one a branch/jump; an
// instruction cannot issue until its source registers are ready. It
// returns the modeled cycle count and the instruction count.
//
// Exported so the ablation benchmarks can exercise the scheduler
// directly.
func ScheduleBlock(q *core.Instrumentation, b *om.Block) (cycles int64, n int) {
	var ready [alpha.NumRegs]int64 // cycle at which each register is ready
	var cycle int64                // current issue cycle
	slots := 0                     // instructions issued this cycle
	memUsed := false
	brUsed := false

	var regs []alpha.Reg
	for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
		n++
		i := in.I
		// Earliest cycle all operands are ready.
		minCycle := cycle
		regs = i.ReadsRegs(regs[:0])
		for _, r := range regs {
			if ready[r] > minCycle {
				minCycle = ready[r]
			}
		}
		isMem := i.Op.MemBytes() > 0
		isBr := i.Op.Format() == alpha.FormatBranch || i.Op.Format() == alpha.FormatJump
		// Structural constraints: advance to a cycle with a free slot of
		// the right kind.
		for {
			if minCycle > cycle {
				cycle = minCycle
				slots, memUsed, brUsed = 0, false, false
			}
			if slots >= 2 || (isMem && memUsed) || (isBr && brUsed) {
				cycle++
				slots, memUsed, brUsed = 0, false, false
				continue
			}
			break
		}
		slots++
		if isMem {
			memUsed = true
		}
		if isBr {
			brUsed = true
		}
		if w, ok := i.WritesReg(); ok {
			ready[w] = cycle + latency(i.Op)
		}
	}
	return cycle + 1, n
}
