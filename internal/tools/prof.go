package tools

import (
	"atom/internal/core"
)

// gprof: call-graph-based profiling — counts calls into each procedure
// and attributes dynamic instructions to it (paper Figure 5: "call graph
// based profiling tool"; instruments each procedure and each basic block
// with 2 arguments).
func init() {
	register(core.Tool{
		Name:        "gprof",
		Description: "call graph based profiling tool",
		Analysis: map[string]string{
			"gprof_anal.c": `
#include <stdio.h>
#include <stdlib.h>

long *calls;
long *insts;
long nprocs;
static FILE *out;

void GpInit(long n) {
	calls = (long *) calloc(n, sizeof(long));
	insts = (long *) calloc(n, sizeof(long));
	nprocs = n;
	out = fopen("gprof.out", "w");
	fprintf(out, "procedure\tcalls\tinsts\n");
}

void GpProc(long id, char *name) {
	if (calls[id] == 0 && insts[id] == 0) return;
	fprintf(out, "%s\t%d\t%d\n", name, calls[id], insts[id]);
}

void GpDone(void) {
	fclose(out);
}
`,
			"gprof_fast.s": `
	.text
	.globl GpEnter
	.ent GpEnter
GpEnter:
	la t0, calls
	ldq t0, 0(t0)
	s8addq a0, t0, t0
	ldq t1, 0(t0)
	addq t1, 1, t1
	stq t1, 0(t0)
	ret (ra)
	.end GpEnter

	.globl GpBlock
	.ent GpBlock
GpBlock:
	la t0, insts
	ldq t0, 0(t0)
	s8addq a0, t0, t0
	ldq t1, 0(t0)
	addq t1, a1, t1
	stq t1, 0(t0)
	ret (ra)
	.end GpBlock
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			for _, pr := range []string{"GpInit(int)", "GpEnter(int, int)", "GpBlock(int, int)", "GpProc(int, char*)", "GpDone()"} {
				if err := q.AddCallProto(pr); err != nil {
					return err
				}
			}
			id := 0
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				if err := q.AddCallProc(p, core.ProcBefore, "GpEnter", id, 0); err != nil {
					return err
				}
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					n := 0
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						n++
					}
					if err := q.AddCallBlock(b, core.BlockBefore, "GpBlock", id, n); err != nil {
						return err
					}
				}
				if err := q.AddCallProgram(core.ProgramAfter, "GpProc", id, q.ProcName(p)); err != nil {
					return err
				}
				id++
			}
			if err := q.AddCallProgram(core.ProgramBefore, "GpInit", id); err != nil {
				return err
			}
			return q.AddCallProgram(core.ProgramAfter, "GpDone")
		},
	})
}

// prof: flat instruction profiling — dynamic instructions per procedure
// (paper Figure 5: "Instruction profiling tool"; each procedure / basic
// block, 2 arguments).
func init() {
	register(core.Tool{
		Name:        "prof",
		Description: "instruction profiling tool",
		Analysis: map[string]string{
			"prof_anal.c": `
#include <stdio.h>
#include <stdlib.h>

long *pfinsts;
long pfnprocs;
static FILE *out;

void PfInit(long n) {
	pfinsts = (long *) calloc(n, sizeof(long));
	pfnprocs = n;
}

void PfProc(long id, char *name) {
	if (pfinsts[id] == 0) return;
	fprintf(out, "%s\t%d\n", name, pfinsts[id]);
}

void PfDone(void) {
	fclose(out);
}

void PfOpen(void) {
	long total = 0;
	long i;
	for (i = 0; i < pfnprocs; i++) total += pfinsts[i];
	out = fopen("prof.out", "w");
	fprintf(out, "total instructions: %d\n", total);
	fprintf(out, "procedure\tinsts\n");
}
`,
			"prof_fast.s": `
	.text
	.globl PfBlock
	.ent PfBlock
PfBlock:
	la t0, pfinsts
	ldq t0, 0(t0)
	s8addq a0, t0, t0
	ldq t1, 0(t0)
	addq t1, a1, t1
	stq t1, 0(t0)
	ret (ra)
	.end PfBlock
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			for _, pr := range []string{"PfInit(int)", "PfBlock(int, int)", "PfOpen()", "PfProc(int, char*)", "PfDone()"} {
				if err := q.AddCallProto(pr); err != nil {
					return err
				}
			}
			id := 0
			var reports []func() error
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					n := 0
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						n++
					}
					if err := q.AddCallBlock(b, core.BlockBefore, "PfBlock", id, n); err != nil {
						return err
					}
				}
				pid, pname := id, q.ProcName(p)
				reports = append(reports, func() error {
					return q.AddCallProgram(core.ProgramAfter, "PfProc", pid, pname)
				})
				id++
			}
			if err := q.AddCallProgram(core.ProgramBefore, "PfInit", id); err != nil {
				return err
			}
			if err := q.AddCallProgram(core.ProgramAfter, "PfOpen"); err != nil {
				return err
			}
			for _, r := range reports {
				if err := r(); err != nil {
					return err
				}
			}
			return q.AddCallProgram(core.ProgramAfter, "PfDone")
		},
	})
}

// inline: finds potential inlining call sites by counting executions of
// every direct call site (paper Figure 5: "finds potential inlining call
// sites"; each call site, 1 argument).
func init() {
	register(core.Tool{
		Name:        "inline",
		Description: "finds potential inlining call sites",
		Analysis: map[string]string{
			"inline_anal.c": `
#include <stdio.h>
#include <stdlib.h>

long *incounts;
long innsites;
static FILE *out;

void InInit(long n) {
	incounts = (long *) calloc(n, sizeof(long));
	innsites = n;
}

void InOpen(void) {
	out = fopen("inline.out", "w");
	fprintf(out, "call-site\tcallee\tcount\n");
}

void InReport(long id, long pc, char *callee) {
	if (incounts[id] == 0) return;
	fprintf(out, "0x%x\t%s\t%d\n", pc, callee, incounts[id]);
}

void InDone(void) {
	fclose(out);
}
`,
			"inline_fast.s": `
	.text
	.globl InSite
	.ent InSite
InSite:
	la t0, incounts
	ldq t0, 0(t0)
	s8addq a0, t0, t0
	ldq t1, 0(t0)
	addq t1, 1, t1
	stq t1, 0(t0)
	ret (ra)
	.end InSite
`,
		},
		Instrument: func(q *core.Instrumentation) error {
			for _, pr := range []string{"InInit(int)", "InSite(int)", "InOpen()", "InReport(int, long, char*)", "InDone()"} {
				if err := q.AddCallProto(pr); err != nil {
					return err
				}
			}
			type site struct {
				pc     uint64
				callee string
			}
			var sites []site
			for p := q.GetFirstProc(); p != nil; p = q.GetNextProc(p) {
				for b := q.GetFirstBlock(p); b != nil; b = q.GetNextBlock(b) {
					for in := q.GetFirstInst(b); in != nil; in = q.GetNextInst(in) {
						if !q.IsInstType(in, core.InstTypeCall) {
							continue
						}
						callee, ok := q.GetProcCalled(in)
						if !ok {
							callee = "<indirect>"
						}
						if err := q.AddCallInst(in, core.InstBefore, "InSite", len(sites)); err != nil {
							return err
						}
						sites = append(sites, site{q.InstPC(in), callee})
					}
				}
			}
			if err := q.AddCallProgram(core.ProgramBefore, "InInit", len(sites)); err != nil {
				return err
			}
			if err := q.AddCallProgram(core.ProgramAfter, "InOpen"); err != nil {
				return err
			}
			for i, s := range sites {
				if err := q.AddCallProgram(core.ProgramAfter, "InReport", i, int64(s.pc), s.callee); err != nil {
					return err
				}
			}
			return q.AddCallProgram(core.ProgramAfter, "InDone")
		},
	})
}
