// Package tools provides the eleven analysis tools the paper evaluates
// (Figure 5): branch, cache, dyninst, gprof, inline, io, malloc, pipe,
// prof, syscall, and unalign. Each is a complete ATOM tool — a Go
// instrumentation routine plus MiniC analysis routines — built on the
// core package exactly as a user of the original system would write them
// in C.
//
// Each tool writes its report to "<name>.out" in the program's working
// directory (the VM's in-memory filesystem).
package tools

import (
	"fmt"
	"sort"

	"atom/internal/core"
)

var registry = map[string]core.Tool{}
var order []string

func register(t core.Tool) {
	if _, dup := registry[t.Name]; dup {
		panic(fmt.Sprintf("tools: duplicate tool %q", t.Name))
	}
	registry[t.Name] = t
	order = append(order, t.Name)
}

// Names returns the registered tool names, sorted.
func Names() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// ByName returns the named tool.
func ByName(name string) (core.Tool, bool) {
	t, ok := registry[name]
	return t, ok
}

// All returns every registered tool, sorted by name.
func All() []core.Tool {
	var out []core.Tool
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}
