package tools_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"atom/internal/aout"
	"atom/internal/core"
	"atom/internal/rtl"
	"atom/internal/tools"
	"atom/internal/vm"
)

const testApp = `
#include <stdio.h>
#include <stdlib.h>

long sum_odd(long n) {
	long s = 0;
	long i;
	for (i = 1; i <= n; i += 2) s += i;
	return s;
}

int main() {
	char *buf = malloc(256);
	char *big = malloc(10000);
	long s = sum_odd(99);
	big[0] = (char)s;
	FILE *f = fopen("app.out", "w");
	fprintf(f, "s=%d b=%d\n", s, buf == big);
	fclose(f);
	printf("done %d\n", s);
	return 0;
}
`

func buildApp(t *testing.T) *aout.File {
	t.Helper()
	exe, err := rtl.BuildProgram("app.c", testApp)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return exe
}

func run(t *testing.T, exe *aout.File, heapOff uint64) *vm.Machine {
	t.Helper()
	m, err := vm.New(exe, vm.Config{AnalysisHeapOffset: heapOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v (stdout=%q stderr=%q)", err, m.Stdout, m.Stderr)
	}
	return m
}

// field extracts "<label>: <num>" from a tool report.
func field(t *testing.T, report, label string) int64 {
	t.Helper()
	for _, ln := range strings.Split(report, "\n") {
		if strings.HasPrefix(ln, label+":") {
			rest := strings.TrimSpace(strings.TrimPrefix(ln, label+":"))
			// Take the leading integer (reports write ratios as "958/1000").
			end := 0
			for end < len(rest) && (rest[end] == '-' && end == 0 || rest[end] >= '0' && rest[end] <= '9') {
				end++
			}
			v, err := strconv.ParseInt(rest[:end], 10, 64)
			if err != nil {
				t.Fatalf("bad %s line %q", label, ln)
			}
			return v
		}
	}
	t.Fatalf("report lacks %q:\n%s", label, report)
	return 0
}

func TestAllToolsRun(t *testing.T) {
	app := buildApp(t)
	ref := run(t, app, 0)
	if len(tools.Names()) != 11 {
		t.Fatalf("registered %d tools, want 11: %v", len(tools.Names()), tools.Names())
	}
	for _, name := range tools.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tool, _ := tools.ByName(name)
			res, err := core.Instrument(app, tool, core.Options{})
			if err != nil {
				t.Fatalf("Instrument: %v", err)
			}
			m := run(t, res.Exe, res.HeapOffset)
			if string(m.Stdout) != string(ref.Stdout) {
				t.Errorf("stdout perturbed: %q vs %q", m.Stdout, ref.Stdout)
			}
			if string(m.FSOut["app.out"]) != string(ref.FSOut["app.out"]) {
				t.Errorf("app output file perturbed")
			}
			report, ok := m.FSOut[name+".out"]
			if !ok {
				t.Fatalf("%s.out missing; files = %v", name, m.Paths())
			}
			if len(report) == 0 {
				t.Fatalf("%s.out empty", name)
			}
			if m.Icount <= ref.Icount {
				t.Errorf("icount %d not above baseline %d", m.Icount, ref.Icount)
			}
			t.Logf("overhead %.2fx, report:\n%s", float64(m.Icount)/float64(ref.Icount), report)
		})
	}
}

func instrumentAndRun(t *testing.T, name string, opts core.Options) (*vm.Machine, string) {
	t.Helper()
	app := buildApp(t)
	tool, ok := tools.ByName(name)
	if !ok {
		t.Fatalf("tool %q not registered", name)
	}
	res, err := core.Instrument(app, tool, opts)
	if err != nil {
		t.Fatalf("Instrument(%s): %v", name, err)
	}
	m := run(t, res.Exe, res.HeapOffset)
	return m, string(m.FSOut[name+".out"])
}

func TestBranchToolNumbers(t *testing.T) {
	m, report := instrumentAndRun(t, "branch", core.Options{})
	_ = m
	// The sum_odd loop executes its conditional 50 times; dynamic
	// branches must be well above that, and accuracy high (loopy code).
	dyn := field(t, report, "dynamic branches")
	if dyn < 50 {
		t.Errorf("dynamic branches = %d, want >= 50", dyn)
	}
	acc := field(t, report, "accuracy")
	if acc < 700 {
		t.Errorf("2-bit predictor accuracy = %d/1000, implausibly low for loops", acc)
	}
	if miss := field(t, report, "mispredictions"); miss <= 0 || miss >= dyn {
		t.Errorf("mispredictions = %d of %d", miss, dyn)
	}
}

func TestDyninstMatchesMachineCount(t *testing.T) {
	app := buildApp(t)
	ref := run(t, app, 0)
	tool, _ := tools.ByName("dyninst")
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := run(t, res.Exe, res.HeapOffset)
	report := string(m.FSOut["dyninst.out"])
	counted := field(t, report, "dynamic instructions")
	// The tool counts exactly the application's own instructions — the
	// uninstrumented run's retired-instruction count.
	// Block-granularity counting attributes whole blocks; the block that
	// halts the machine (call_pal 0; br) retires only its first
	// instruction, so the tool may count a few instructions the machine
	// never retired.
	if counted < int64(ref.Icount) || counted > int64(ref.Icount)+4 {
		t.Errorf("dyninst counted %d instructions, machine retired %d", counted, ref.Icount)
	}
}

func TestCacheToolNumbers(t *testing.T) {
	app := buildApp(t)
	ref := run(t, app, 0)
	m, report := instrumentAndRun(t, "cache", core.Options{})
	_ = m
	refs := field(t, report, "references")
	// The report is written when the program reaches exit(); the handful
	// of memory references exit() itself performs afterwards are counted
	// by the machine but happen after the report — so the tool sees
	// slightly fewer than the machine's total.
	machine := int64(ref.Loads + ref.Stores)
	if refs > machine || machine-refs > 8 {
		t.Errorf("cache saw %d references, machine performed %d", refs, machine)
	}
	hits := field(t, report, "hits")
	misses := field(t, report, "misses")
	if hits+misses != refs {
		t.Errorf("hits %d + misses %d != refs %d", hits, misses, refs)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("degenerate cache behavior: %d hits, %d misses", hits, misses)
	}
}

func TestCacheToolGeometryArgs(t *testing.T) {
	_, small := instrumentAndRun(t, "cache", core.Options{ToolArgs: []string{"256", "16"}})
	_, big := instrumentAndRun(t, "cache", core.Options{ToolArgs: []string{"65536", "64"}})
	if !strings.Contains(small, "cache: 256 bytes, 16-byte lines") {
		t.Errorf("geometry args ignored:\n%s", small)
	}
	if field(t, small, "misses") <= field(t, big, "misses") {
		t.Errorf("small cache (%d misses) not worse than big cache (%d misses)",
			field(t, small, "misses"), field(t, big, "misses"))
	}
}

func TestMallocToolNumbers(t *testing.T) {
	// testApp calls malloc twice directly; fopen allocates once; fprintf
	// does not allocate. The analysis' own allocations must NOT count.
	_, report := instrumentAndRun(t, "malloc", core.Options{})
	calls := field(t, report, "malloc calls")
	if calls != 3 {
		t.Errorf("malloc calls = %d, want 3 (two in main, one in fopen)", calls)
	}
	total := field(t, report, "bytes requested")
	if total < 256+10000 {
		t.Errorf("bytes requested = %d, want >= 10256", total)
	}
	if !strings.Contains(report, ">") && !strings.Contains(report, "<=") {
		t.Errorf("histogram missing:\n%s", report)
	}
}

func TestSyscallToolNumbers(t *testing.T) {
	app := buildApp(t)
	ref := run(t, app, 0)
	_ = ref
	_, report := instrumentAndRun(t, "syscall", core.Options{})
	// The app opens one file for write, writes to it and stdout, closes,
	// sbrks for malloc, exits.
	lines := map[string][2]int64{}
	for _, ln := range strings.Split(report, "\n") {
		var name string
		var calls, ok int64
		if _, err := fmt.Sscanf(ln, "%s\t%d\t%d", &name, &calls, &ok); err == nil {
			lines[name] = [2]int64{calls, ok}
		}
	}
	if lines["open"][0] != 1 {
		t.Errorf("open calls = %d, want 1", lines["open"][0])
	}
	if lines["close"][0] != 1 {
		t.Errorf("close calls = %d, want 1", lines["close"][0])
	}
	// The report is written when the program reaches exit(), i.e. before
	// the halt PAL itself executes, so exit never appears in its own
	// report — the same before-the-end semantics as the paper's
	// ProgramAfter.
	if lines["exit"][0] != 0 {
		t.Errorf("exit calls = %d, want 0 (report precedes the halt)", lines["exit"][0])
	}
	if lines["write"][0] < 2 {
		t.Errorf("write calls = %d, want >= 2", lines["write"][0])
	}
	if lines["sbrk"][0] < 1 {
		t.Errorf("sbrk calls = %d, want >= 1", lines["sbrk"][0])
	}
}

func TestIoToolNumbers(t *testing.T) {
	_, report := instrumentAndRun(t, "io", core.Options{})
	// The app writes "s=2500 b=0\n" (11 bytes) to app.out and
	// "done 2500\n" (10 bytes) to stdout. The analysis' own output must
	// not be counted (two copies of libc!).
	written := field(t, report, "bytes written")
	if written != 21 {
		t.Errorf("bytes written = %d, want 21 (app only; analysis I/O must not count)", written)
	}
	if calls := field(t, report, "write calls"); calls != 2 {
		t.Errorf("write calls = %d, want 2", calls)
	}
}

func TestPipeToolNumbers(t *testing.T) {
	app := buildApp(t)
	ref := run(t, app, 0)
	_, report := instrumentAndRun(t, "pipe", core.Options{})
	insts := field(t, report, "dynamic instructions")
	if insts < int64(ref.Icount) || insts > int64(ref.Icount)+4 {
		t.Errorf("pipe counted %d insts, machine retired %d", insts, ref.Icount)
	}
	cycles := field(t, report, "modeled cycles")
	// Dual issue bounds: at least half an instruction per cycle and at
	// most ~latency-bound; cycles must lie between insts/2 and 4*insts.
	if cycles < insts/2 || cycles > insts*4 {
		t.Errorf("modeled cycles %d implausible for %d instructions", cycles, insts)
	}
	if cpi := field(t, report, "cpi"); cpi < 500 || cpi > 4000 {
		t.Errorf("cpi = %d/1000, implausible", cpi)
	}
}

func TestProfAndGprofAgree(t *testing.T) {
	_, prof := instrumentAndRun(t, "prof", core.Options{})
	_, gprof := instrumentAndRun(t, "gprof", core.Options{})
	// Both attribute dynamic instructions to procedures; main must appear
	// in both with the same count; gprof additionally reports call
	// counts (main called once, sum_odd once, malloc 3 times).
	profMain := lineField(t, prof, "main", 1)
	gprofMain := lineField(t, gprof, "main", 2)
	if profMain != gprofMain || profMain == 0 {
		t.Errorf("main insts: prof %d, gprof %d", profMain, gprofMain)
	}
	if calls := lineField(t, gprof, "sum_odd", 1); calls != 1 {
		t.Errorf("gprof: sum_odd calls = %d, want 1", calls)
	}
	if calls := lineField(t, gprof, "malloc", 1); calls != 3 {
		t.Errorf("gprof: malloc calls = %d, want 3", calls)
	}
}

// lineField returns column col (tab-separated, 0 = first after name) of
// the report line starting with name.
func lineField(t *testing.T, report, name string, col int) int64 {
	t.Helper()
	for _, ln := range strings.Split(report, "\n") {
		f := strings.Split(ln, "\t")
		if len(f) > col && f[0] == name {
			v, err := strconv.ParseInt(f[col], 10, 64)
			if err != nil {
				t.Fatalf("bad line %q", ln)
			}
			return v
		}
	}
	t.Fatalf("report lacks %q:\n%s", name, report)
	return 0
}

func TestInlineToolFindsCallSites(t *testing.T) {
	_, report := instrumentAndRun(t, "inline", core.Options{})
	if !strings.Contains(report, "sum_odd") {
		t.Errorf("inline report lacks the sum_odd call site:\n%s", report)
	}
	if !strings.Contains(report, "malloc") {
		t.Errorf("inline report lacks malloc call sites:\n%s", report)
	}
}

func TestUnalignTool(t *testing.T) {
	// An app that performs deliberately unaligned accesses.
	src := `
#include <stdio.h>
char buf[64];
int main() {
	long *p = (long *)(buf + 1);
	long i;
	for (i = 0; i < 5; i++) *p = *p + 1;
	long *q = (long *)(buf + 8);
	*q = 7;
	printf("%d %d\n", (long)*p, (long)*q);
	return 0;
}
`
	app, err := rtl.BuildProgram("u.c", src)
	if err != nil {
		t.Fatal(err)
	}
	ref := run(t, app, 0)
	tool, _ := tools.ByName("unalign")
	res, err := core.Instrument(app, tool, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := run(t, res.Exe, res.HeapOffset)
	report := string(m.FSOut["unalign.out"])
	un := field(t, report, "unaligned references")
	// 5 iterations x (load + store) through buf+1 = 10 unaligned refs;
	// the tool must count exactly what the machine saw.
	if un != int64(ref.Unaligned) {
		t.Errorf("tool counted %d unaligned refs, machine saw %d", un, ref.Unaligned)
	}
	if un != 11 { // 5 x (load+store) through buf+1, plus the printf reload
		t.Errorf("unaligned = %d, want 11", un)
	}
}
