package vm

import "fmt"

// Mode selects the machine's dispatch strategy. The three modes are an
// ablation ladder — each layer keeps architectural state (registers,
// memory, every statistic, Stdout/FSOut) bit-identical to the one below
// it and differs only in host-side speed:
//
//   - ModePlain: decode every retired instruction from memory, the
//     pre-cache behavior. Baseline.
//   - ModePredecode: fetch decoded instructions from the per-word text
//     predecode cache.
//   - ModeSuperblock: additionally harvest straight-line decoded runs
//     into superblocks — pre-resolved micro-op sequences executed whole
//     per dispatch, with taken exits linked directly to successor
//     blocks (see superblock.go).
//
// The zero value selects ModeSuperblock, so existing callers get the
// fastest dispatch without opting in.
type Mode int

const (
	// ModeDefault resolves to ModeSuperblock.
	ModeDefault Mode = iota
	ModePlain
	ModePredecode
	ModeSuperblock
)

// ParseMode resolves a -vm-mode flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "default":
		return ModeDefault, nil
	case "plain":
		return ModePlain, nil
	case "predecode":
		return ModePredecode, nil
	case "superblock":
		return ModeSuperblock, nil
	}
	return 0, fmt.Errorf("vm: unknown mode %q (plain, predecode, or superblock)", s)
}

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModePredecode:
		return "predecode"
	case ModeDefault, ModeSuperblock:
		return "superblock"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// dispatchMode resolves the configured mode against the unexported
// ablation knobs (which predate the exported field and are kept for the
// benchmarks): noPredecode forces the plain loop, noSuperblock caps
// dispatch at the predecode fast path.
func (c *Config) dispatchMode() Mode {
	mode := c.Mode
	if mode == ModeDefault {
		mode = ModeSuperblock
	}
	if c.noSuperblock && mode == ModeSuperblock {
		mode = ModePredecode
	}
	if c.noPredecode {
		mode = ModePlain
	}
	return mode
}
