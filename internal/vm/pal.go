package vm

import (
	"fmt"

	"atom/internal/alpha"
)

// pal dispatches a CALL_PAL service. It returns done=true when the
// machine halted (PC must not advance further).
func (m *Machine) pal(fn uint32) (done bool, err error) {
	m.Syscalls++
	a0 := m.Reg[alpha.A0]
	a1 := m.Reg[alpha.A1]
	a2 := m.Reg[alpha.A2]
	switch fn {
	case alpha.PalHalt:
		m.halted = true
		m.exitCode = int(a0)
		m.flushFiles()
		return true, nil

	case alpha.PalWrite:
		n, err := m.sysWrite(int(a0), uint64(a1), a2)
		if err != nil {
			return false, err
		}
		m.Reg[alpha.V0] = n

	case alpha.PalRead:
		n, err := m.sysRead(int(a0), uint64(a1), a2)
		if err != nil {
			return false, err
		}
		m.Reg[alpha.V0] = n

	case alpha.PalOpen:
		m.Reg[alpha.V0] = m.sysOpen(uint64(a0), a1)

	case alpha.PalClose:
		m.Reg[alpha.V0] = m.sysClose(int(a0))

	case alpha.PalSbrk:
		m.Reg[alpha.V0] = m.sysSbrk(&m.brk, a0)

	case alpha.PalSbrk2:
		if m.brk2Sep {
			m.Reg[alpha.V0] = m.sysSbrk(&m.brk2, a0)
		} else {
			// Linked sbrks: both zones share one break pointer, so each
			// allocation starts where the other left off (paper,
			// Section 4, default dynamic-memory scheme).
			m.Reg[alpha.V0] = m.sysSbrk(&m.brk, a0)
		}

	case alpha.PalCycles:
		m.Reg[alpha.V0] = int64(m.Icount)

	default:
		return false, m.faultf("unknown PAL function %#x", fn)
	}
	return false, nil
}

func (m *Machine) sysWrite(fd int, buf uint64, n int64) (int64, error) {
	if n < 0 {
		return -1, nil
	}
	if err := m.checkAddr(buf, int(n)); err != nil {
		return 0, err
	}
	data := m.Mem[buf : buf+uint64(n)]
	switch fd {
	case 1:
		m.Stdout = append(m.Stdout, data...)
	case 2:
		m.Stderr = append(m.Stderr, data...)
	default:
		f := m.file(fd)
		if f == nil || f.reading {
			return -1, nil
		}
		f.data = append(f.data, data...)
	}
	return n, nil
}

func (m *Machine) sysRead(fd int, buf uint64, n int64) (int64, error) {
	if n < 0 {
		return -1, nil
	}
	if err := m.checkAddr(buf, int(n)); err != nil {
		return 0, err
	}
	var src []byte
	var pos *int
	if fd == 0 {
		src, pos = m.cfg.Stdin, &m.stdinPos
	} else {
		f := m.file(fd)
		if f == nil || !f.reading {
			return -1, nil
		}
		src, pos = f.data, &f.pos
	}
	avail := len(src) - *pos
	if avail <= 0 {
		return 0, nil
	}
	if int64(avail) < n {
		n = int64(avail)
	}
	copy(m.Mem[buf:buf+uint64(n)], src[*pos:])
	*pos += int(n)
	return n, nil
}

// sysOpen opens path (a NUL-terminated string at addr). flags: 0 read,
// 1 write (create or truncate).
func (m *Machine) sysOpen(addr uint64, flags int64) int64 {
	path, ok := m.cstring(addr)
	if !ok {
		return -1
	}
	switch flags {
	case 0:
		data, ok := m.cfg.FS[path]
		if !ok {
			// Files the program itself wrote earlier in this run are
			// readable back.
			if out, ok2 := m.FSOut[path]; ok2 {
				data = out
			} else {
				return -1
			}
		}
		m.files = append(m.files, &openFile{path: path, reading: true, data: data})
	case 1:
		m.files = append(m.files, &openFile{path: path})
	default:
		return -1
	}
	return int64(len(m.files) - 1)
}

func (m *Machine) sysClose(fd int) int64 {
	f := m.file(fd)
	if f == nil {
		return -1
	}
	f.closed = true
	if !f.reading {
		m.FSOut[f.path] = f.data
	}
	return 0
}

func (m *Machine) sysSbrk(brk *uint64, incr int64) int64 {
	old := *brk
	nw := uint64(int64(old) + incr)
	if nw > uint64(len(m.Mem)) || int64(nw) < int64(m.heapBase) {
		return -1
	}
	*brk = nw
	return int64(old)
}

func (m *Machine) file(fd int) *openFile {
	if fd < 3 || fd >= len(m.files) {
		return nil
	}
	f := m.files[fd]
	if f.closed {
		return nil
	}
	return f
}

func (m *Machine) cstring(addr uint64) (string, bool) {
	if addr >= uint64(len(m.Mem)) {
		return "", false
	}
	end := addr
	for end < uint64(len(m.Mem)) && m.Mem[end] != 0 {
		end++
		if end-addr > 4096 {
			return "", false
		}
	}
	return string(m.Mem[addr:end]), true
}

// flushFiles persists any still-open written files at exit, mirroring the
// kernel closing descriptors on process exit.
func (m *Machine) flushFiles() {
	for _, f := range m.files {
		if !f.closed && !f.reading && f.path != "<stdout>" && f.path != "<stderr>" && f.path != "<stdin>" {
			m.FSOut[f.path] = f.data
		}
	}
}

// ReadMem copies n bytes at addr; helper for tests and tools.
func (m *Machine) ReadMem(addr, n uint64) ([]byte, error) {
	if addr+n > uint64(len(m.Mem)) {
		return nil, fmt.Errorf("vm: ReadMem %#x+%d out of range", addr, n)
	}
	out := make([]byte, n)
	copy(out, m.Mem[addr:])
	return out, nil
}
