package vm

import (
	"encoding/binary"

	"atom/internal/alpha"
)

// Superblock dispatch: the code-cache + trace-linking design the DBI
// literature describes for Pin/DynamoRIO, applied to the interpreter.
// On first execution of a PC the machine harvests the straight-line
// decoded run starting there — through fall-through paths and direct
// unconditional branches — into a superblock: a sequence of micro-ops
// whose register and memory effects are resolved to closures at build
// time. Conditional branches become guarded side exits, `bsr` and the
// indirect jumps terminate the block, and `call_pal` ends harvesting
// *before* the PAL instruction so every service call still goes through
// the ordinary interpreter. Dispatch then retires a whole block per
// iteration, and exits with a statically known successor are linked
// directly to the successor block, so hot loops execute entirely inside
// runSB with no per-instruction fetch, decode, or switch.
//
// Correctness invariants:
//
//   - Every micro-op except a trailing sbOpExit retires exactly one
//     instruction, so Icount is base + index — materialized into
//     m.Icount only at block exits and faults.
//   - A faulting memory op performs no side effects (the bounds check
//     mirrors checkAddr exactly); the dispatcher restores PC/Icount to
//     the faulting instruction and re-executes it through m.exec to
//     regenerate the byte-identical diagnostic.
//   - A store into the text segment re-decodes the predecode cache and
//     drops every superblock whose span overlaps the store, then bails
//     out of the current block after that op, so stale harvested code
//     is never executed (self-modifying code stays exact).
//   - Blocks are entered only when the remaining instruction budget
//     covers the whole block; otherwise the dispatcher single-steps, so
//     MaxInstr exhaustion yields the same Icount, PC, and error text as
//     the plain loop.
//
// Trace, Probe, and SamplePeriod force per-instruction dispatch (Run
// never selects this path), so the deterministic profiler's event
// sequence is bit-identical with superblocks available.

// sbMaxOps bounds harvesting; long straight-line runs split into
// chained (and linked) blocks.
const sbMaxOps = 256

// Memory micro-op outcomes.
const (
	sbOK        uint8 = iota
	sbFaulted         // bounds check failed; no side effects applied
	sbTextStore       // store hit text: caches invalidated, bail out
)

type sbKind uint8

const (
	sbOpReg     sbKind = iota // register effect closure
	sbOpNop                   // retires with no effect (br zero)
	sbOpMem                   // load/store closure
	sbOpGuard                 // conditional branch: taken -> static exit
	sbOpJump                  // bsr: link write + static exit
	sbOpJumpInd               // jmp/jsr/ret: dynamic exit via Rb
	sbOpExit                  // terminal, retires nothing; PC := pc
)

// sbOp is one micro-op. pc is the address of the source instruction
// (for sbOpExit, the address execution resumes at); inst is the decoded
// original, kept for slow-path re-execution on faults.
type sbOp struct {
	kind    sbKind
	ra, rb  alpha.Reg // sbOpJumpInd operands
	pc      uint64
	target  uint64 // static successor of a taken guard / jump
	reg     func(r *[alpha.NumRegs]int64)
	mem     func(m *Machine) uint8
	cond    func(r *[alpha.NumRegs]int64) bool
	inst    alpha.Inst
	link    *superblock // trace link for the static exit
	linkGen uint64      // valid iff == Machine.sbGen
	canLink bool
}

// superblock is one harvested run, keyed by entry PC.
type superblock struct {
	entry  uint64
	n      int // retiring micro-ops; max instructions one pass retires
	ops    []sbOp
	lo, hi uint64 // conservative text span covered, for invalidation
}

// sbNone marks entry PCs where no block can be built (call_pal or an
// undecodable word first), so the dispatcher single-steps them without
// re-attempting a build every visit.
var sbNone = &superblock{}

// lookupSB returns the superblock entered at pc, building and caching
// it on first use. nil means "single-step this PC" — out-of-text,
// misaligned, or unbuildable.
func (m *Machine) lookupSB(pc uint64) *superblock {
	if pc < m.exe.TextAddr || pc+4 > m.textEnd || pc%4 != 0 {
		return nil
	}
	idx := (pc - m.exe.TextAddr) / 4
	if sb := m.sbByIdx[idx]; sb != nil {
		if sb == sbNone {
			return nil
		}
		return sb
	}
	sb := m.buildSB(pc)
	if sb == nil {
		m.sbByIdx[idx] = sbNone
		return nil
	}
	m.sbByIdx[idx] = sb
	m.sbAll = append(m.sbAll, sb)
	m.sbBuilt++
	if m.cfg.Obs.Enabled() {
		m.cfg.Obs.Observe("vm.sb.block_len", int64(sb.n))
	}
	return sb
}

// sbInvalidate drops every superblock whose span overlaps a store to
// [addr, addr+size) and invalidates all trace links (generation bump).
// Entry slots holding the unbuildable sentinel inside the range are
// cleared too: the patched word may now decode.
func (m *Machine) sbInvalidate(addr uint64, size int) {
	lo, hi := addr, addr+uint64(size)
	dropped := false
	kept := m.sbAll[:0]
	for _, sb := range m.sbAll {
		if sb.lo < hi && lo < sb.hi {
			m.sbByIdx[(sb.entry-m.exe.TextAddr)/4] = nil
			m.sbInval++
			dropped = true
			continue
		}
		kept = append(kept, sb)
	}
	for i := len(kept); i < len(m.sbAll); i++ {
		m.sbAll[i] = nil
	}
	m.sbAll = kept
	if dropped {
		m.sbGen++
	}
	for a := lo &^ 3; a < hi; a += 4 {
		if a >= m.exe.TextAddr && a+4 <= m.textEnd {
			if idx := (a - m.exe.TextAddr) / 4; m.sbByIdx[idx] == sbNone {
				m.sbByIdx[idx] = nil
			}
		}
	}
}

// runSuperblocks is Run's dispatch loop in ModeSuperblock. PCs without
// a block — and blocks larger than the remaining instruction budget —
// are single-stepped with the plain loop's exact semantics.
func (m *Machine) runSuperblocks() (int, error) {
	for !m.halted {
		if m.Icount >= m.cfg.MaxInstr {
			return 0, budgetErr(m.cfg.MaxInstr, m.PC)
		}
		sb := m.lookupSB(m.PC)
		if sb == nil || m.cfg.MaxInstr-m.Icount < uint64(sb.n) {
			if err := m.stepFast(); err != nil {
				return 0, err
			}
			continue
		}
		m.sbHits++
		exit, err := m.runSB(sb)
		if err != nil {
			return 0, err
		}
		// Trace linking: a static exit without a valid link resolves its
		// successor once; later passes jump block-to-block inside runSB.
		if exit != nil && exit.canLink && (exit.link == nil || exit.linkGen != m.sbGen) {
			if next := m.lookupSB(m.PC); next != nil {
				exit.link, exit.linkGen = next, m.sbGen
				m.sbLinks++
			}
		}
	}
	return m.exitCode, nil
}

// runSB executes one superblock (and anything reachable over valid
// trace links). On return m.PC and m.Icount are exact. The returned op
// is the static exit taken, for link installation; nil for dynamic
// exits, text-store bailouts, and faults.
func (m *Machine) runSB(sb *superblock) (*sbOp, error) {
	base := m.Icount
	maxI := m.cfg.MaxInstr
	r := &m.Reg
	ops := sb.ops
	i := 0
	for {
		op := &ops[i]
		switch op.kind {
		case sbOpReg:
			op.reg(r)
		case sbOpNop:
		case sbOpMem:
			switch op.mem(m) {
			case sbOK:
			case sbFaulted:
				// No side effects were applied; re-execute through the
				// interpreter for the byte-identical diagnostic.
				m.Icount = base + uint64(i) + 1
				m.PC = op.pc
				return nil, m.exec(op.inst)
			default: // sbTextStore: this very block may be stale now
				m.Icount = base + uint64(i) + 1
				m.PC = op.pc + 4
				return nil, nil
			}
		case sbOpGuard:
			if op.cond(r) {
				ic := base + uint64(i) + 1
				if next := op.link; next != nil && op.linkGen == m.sbGen && maxI-ic >= uint64(next.n) {
					m.sbHits++
					base, ops, i = ic, next.ops, 0
					continue
				}
				m.Icount = ic
				m.PC = op.target
				return op, nil
			}
		case sbOpJump:
			if op.reg != nil {
				op.reg(r)
			}
			ic := base + uint64(i) + 1
			if next := op.link; next != nil && op.linkGen == m.sbGen && maxI-ic >= uint64(next.n) {
				m.sbHits++
				base, ops, i = ic, next.ops, 0
				continue
			}
			m.Icount = ic
			m.PC = op.target
			return op, nil
		case sbOpJumpInd:
			// Read the target before the link write (ret (ra) reads the
			// register a jsr to the same register would clobber).
			target := uint64(r[op.rb]) &^ 3
			if op.ra != alpha.Zero {
				r[op.ra] = int64(op.pc + 4)
			}
			m.Icount = base + uint64(i) + 1
			m.PC = target
			return nil, nil
		default: // sbOpExit
			ic := base + uint64(i)
			if next := op.link; next != nil && op.linkGen == m.sbGen && maxI-ic >= uint64(next.n) {
				m.sbHits++
				base, ops, i = ic, next.ops, 0
				continue
			}
			m.Icount = ic
			m.PC = op.pc
			return op, nil
		}
		i++
	}
}

// stepFast executes one instruction with the predecode fast path's
// exact semantics (the caller has already checked the budget).
func (m *Machine) stepFast() error {
	if m.PC < m.exe.TextAddr || m.PC+4 > m.textEnd || m.PC%4 != 0 {
		return m.faultf("instruction fetch from %#x outside text", m.PC)
	}
	idx := (m.PC - m.exe.TextAddr) / 4
	if !m.codeOK[idx] {
		return m.decodeFault()
	}
	m.Icount++
	return m.exec(m.code[idx])
}

// buildSB harvests the superblock entered at pc (known in-text, aligned,
// and indexable). nil means nothing can be harvested there.
func (m *Machine) buildSB(entry uint64) *superblock {
	sb := &superblock{entry: entry, lo: entry, hi: entry}
	visited := make(map[uint64]bool)
	memLen := uint64(len(m.Mem))
	pc := entry
	terminated := false
	for len(sb.ops) < sbMaxOps && !terminated {
		if pc < m.exe.TextAddr || pc+4 > m.textEnd || visited[pc] {
			break
		}
		idx := (pc - m.exe.TextAddr) / 4
		if !m.codeOK[idx] {
			break
		}
		inst := m.code[idx]
		visited[pc] = true
		cover := true
		switch {
		case inst.Op == alpha.OpCallPal:
			// PAL services run through the interpreter only; stop before.
			cover = false
			terminated = true
			visited[pc] = false

		case inst.Op == alpha.OpBr:
			// Direct unconditional branch: harvest straight through it.
			next := pc + 4
			target := uint64(int64(next) + int64(inst.Disp)*4)
			if ra := inst.Ra; ra != alpha.Zero {
				v := int64(next)
				sb.ops = append(sb.ops, sbOp{kind: sbOpReg, pc: pc, inst: inst,
					reg: func(r *[alpha.NumRegs]int64) { r[ra] = v }})
			} else {
				sb.ops = append(sb.ops, sbOp{kind: sbOpNop, pc: pc, inst: inst})
			}
			sb.cover(pc)
			pc = target
			continue

		case inst.Op == alpha.OpBsr:
			op := sbOp{kind: sbOpJump, pc: pc, inst: inst, canLink: true,
				target: uint64(int64(pc+4) + int64(inst.Disp)*4)}
			if ra := inst.Ra; ra != alpha.Zero {
				v := int64(pc + 4)
				op.reg = func(r *[alpha.NumRegs]int64) { r[ra] = v }
			}
			sb.ops = append(sb.ops, op)
			terminated = true

		case inst.Op.IsCondBranch():
			cond := condClosure(inst)
			sb.ops = append(sb.ops, sbOp{kind: sbOpGuard, pc: pc, inst: inst, canLink: true,
				target: uint64(int64(pc+4) + int64(inst.Disp)*4), cond: cond})

		case inst.Op == alpha.OpJmp || inst.Op == alpha.OpJsr || inst.Op == alpha.OpRet:
			sb.ops = append(sb.ops, sbOp{kind: sbOpJumpInd, pc: pc, inst: inst,
				ra: inst.Ra, rb: inst.Rb})
			terminated = true

		case inst.Op.IsLoad() || inst.Op.IsStore():
			sb.ops = append(sb.ops, sbOp{kind: sbOpMem, pc: pc, inst: inst,
				mem: memClosure(inst, memLen, m.exe.TextAddr, m.textEnd)})

		default:
			cl := regClosure(inst)
			if cl == nil {
				// Decodable but not closure-compiled; single-step it.
				cover = false
				terminated = true
				visited[pc] = false
				break
			}
			sb.ops = append(sb.ops, sbOp{kind: sbOpReg, pc: pc, inst: inst, reg: cl})
		}
		if cover {
			sb.cover(pc)
			pc += 4
		}
	}
	sb.n = len(sb.ops)
	if sb.n == 0 {
		return nil
	}
	if !isTerminal(sb.ops[sb.n-1].kind) {
		sb.ops = append(sb.ops, sbOp{kind: sbOpExit, pc: pc, canLink: true})
	}
	return sb
}

func isTerminal(k sbKind) bool {
	return k == sbOpJump || k == sbOpJumpInd || k == sbOpExit
}

// cover extends the block's conservative text span to include pc.
func (sb *superblock) cover(pc uint64) {
	if pc < sb.lo {
		sb.lo = pc
	}
	if pc+4 > sb.hi {
		sb.hi = pc + 4
	}
}

// condClosure compiles a conditional branch's test (CondHolds with the
// register binding resolved at build time).
func condClosure(i alpha.Inst) func(r *[alpha.NumRegs]int64) bool {
	ra := i.Ra
	switch i.Op {
	case alpha.OpBlbc:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra]&1 == 0 }
	case alpha.OpBeq:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra] == 0 }
	case alpha.OpBlt:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra] < 0 }
	case alpha.OpBle:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra] <= 0 }
	case alpha.OpBlbs:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra]&1 == 1 }
	case alpha.OpBne:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra] != 0 }
	case alpha.OpBge:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra] >= 0 }
	case alpha.OpBgt:
		return func(r *[alpha.NumRegs]int64) bool { return r[ra] > 0 }
	}
	panic("vm: condClosure on " + i.Op.String())
}

// memClosure compiles a load or store: the effective-address operands,
// width, sign treatment, and bounds constants are all bound at build
// time. The bounds test replicates checkAddr (null page, then end of
// memory) with zero side effects on failure, so the slow-path re-run
// reproduces the exact fault.
func memClosure(i alpha.Inst, memLen, textAddr, textEnd uint64) func(m *Machine) uint8 {
	ra, rb, disp := i.Ra, i.Rb, int64(i.Disp)
	switch i.Op {
	case alpha.OpLdq:
		return func(m *Machine) uint8 {
			addr := uint64(m.Reg[rb] + disp)
			if addr < 4096 || addr+8 > memLen {
				return sbFaulted
			}
			m.Loads++
			if addr&7 != 0 {
				m.Unaligned++
			}
			if ra != alpha.Zero {
				m.Reg[ra] = int64(binary.LittleEndian.Uint64(m.Mem[addr:]))
			}
			return sbOK
		}
	case alpha.OpLdl:
		return func(m *Machine) uint8 {
			addr := uint64(m.Reg[rb] + disp)
			if addr < 4096 || addr+4 > memLen {
				return sbFaulted
			}
			m.Loads++
			if addr&3 != 0 {
				m.Unaligned++
			}
			if ra != alpha.Zero {
				m.Reg[ra] = int64(int32(binary.LittleEndian.Uint32(m.Mem[addr:])))
			}
			return sbOK
		}
	case alpha.OpLdwu:
		return func(m *Machine) uint8 {
			addr := uint64(m.Reg[rb] + disp)
			if addr < 4096 || addr+2 > memLen {
				return sbFaulted
			}
			m.Loads++
			if addr&1 != 0 {
				m.Unaligned++
			}
			if ra != alpha.Zero {
				m.Reg[ra] = int64(binary.LittleEndian.Uint16(m.Mem[addr:]))
			}
			return sbOK
		}
	case alpha.OpLdbu:
		return func(m *Machine) uint8 {
			addr := uint64(m.Reg[rb] + disp)
			if addr < 4096 || addr+1 > memLen {
				return sbFaulted
			}
			m.Loads++
			if ra != alpha.Zero {
				m.Reg[ra] = int64(m.Mem[addr])
			}
			return sbOK
		}
	}
	// Stores share one closure shape; the width switch is on a bound
	// constant, which the compiler folds per call site anyway — and
	// store throughput is dominated by the text-range test.
	size := uint64(i.Op.MemBytes())
	op := i.Op
	return func(m *Machine) uint8 {
		addr := uint64(m.Reg[rb] + disp)
		if addr < 4096 || addr+size > memLen {
			return sbFaulted
		}
		m.Stores++
		if addr%size != 0 {
			m.Unaligned++
		}
		v := uint64(m.Reg[ra])
		switch op {
		case alpha.OpStq:
			binary.LittleEndian.PutUint64(m.Mem[addr:], v)
		case alpha.OpStl:
			binary.LittleEndian.PutUint32(m.Mem[addr:], uint32(v))
		case alpha.OpStw:
			binary.LittleEndian.PutUint16(m.Mem[addr:], uint16(v))
		default: // OpStb
			m.Mem[addr] = byte(v)
		}
		if addr < textEnd && addr+size > textAddr {
			m.redecode(addr, int(size))
			m.sbInvalidate(addr, int(size))
			return sbTextStore
		}
		return sbOK
	}
}

// regClosure compiles a register-effect instruction (lda/ldah and the
// operate formats) with operands and literals bound at build time. nil
// means the op has no closure form and ends the block.
func regClosure(i alpha.Inst) func(r *[alpha.NumRegs]int64) {
	// lda/ldah write Ra; operate ops write Rc.
	if i.Op == alpha.OpLda || i.Op == alpha.OpLdah {
		ra, rb, disp := i.Ra, i.Rb, int64(i.Disp)
		if ra == alpha.Zero {
			return func(r *[alpha.NumRegs]int64) {}
		}
		if i.Op == alpha.OpLdah {
			disp <<= 16
		}
		return func(r *[alpha.NumRegs]int64) { r[ra] = r[rb] + disp }
	}
	ra, rb, rc := i.Ra, i.Rb, i.Rc
	if rc == alpha.Zero {
		switch i.Op {
		case alpha.OpAddl, alpha.OpSubl, alpha.OpAddq, alpha.OpSubq,
			alpha.OpS4addq, alpha.OpS8addq, alpha.OpCmpeq, alpha.OpCmplt,
			alpha.OpCmple, alpha.OpCmpult, alpha.OpCmpule, alpha.OpAnd,
			alpha.OpBic, alpha.OpBis, alpha.OpOrnot, alpha.OpXor,
			alpha.OpEqv, alpha.OpCmoveq, alpha.OpCmovne, alpha.OpSll,
			alpha.OpSrl, alpha.OpSra, alpha.OpMull, alpha.OpMulq,
			alpha.OpUmulh:
			return func(r *[alpha.NumRegs]int64) {}
		}
		return nil
	}
	if i.HasLit {
		b := int64(i.Lit)
		switch i.Op {
		case alpha.OpAddl:
			return func(r *[alpha.NumRegs]int64) { r[rc] = int64(int32(r[ra] + b)) }
		case alpha.OpSubl:
			return func(r *[alpha.NumRegs]int64) { r[rc] = int64(int32(r[ra] - b)) }
		case alpha.OpAddq:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] + b }
		case alpha.OpSubq:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] - b }
		case alpha.OpS4addq:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra]*4 + b }
		case alpha.OpS8addq:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra]*8 + b }
		case alpha.OpCmpeq:
			return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(r[ra] == b) }
		case alpha.OpCmplt:
			return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(r[ra] < b) }
		case alpha.OpCmple:
			return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(r[ra] <= b) }
		case alpha.OpCmpult:
			return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(uint64(r[ra]) < uint64(b)) }
		case alpha.OpCmpule:
			return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(uint64(r[ra]) <= uint64(b)) }
		case alpha.OpAnd:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] & b }
		case alpha.OpBic:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] &^ b }
		case alpha.OpBis:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] | b }
		case alpha.OpOrnot:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] | ^b }
		case alpha.OpXor:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] ^ b }
		case alpha.OpEqv:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] ^ ^b }
		case alpha.OpCmoveq:
			return func(r *[alpha.NumRegs]int64) {
				if r[ra] == 0 {
					r[rc] = b
				}
			}
		case alpha.OpCmovne:
			return func(r *[alpha.NumRegs]int64) {
				if r[ra] != 0 {
					r[rc] = b
				}
			}
		case alpha.OpSll:
			s := uint64(b) & 63
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] << s }
		case alpha.OpSrl:
			s := uint64(b) & 63
			return func(r *[alpha.NumRegs]int64) { r[rc] = int64(uint64(r[ra]) >> s) }
		case alpha.OpSra:
			s := uint64(b) & 63
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] >> s }
		case alpha.OpMull:
			return func(r *[alpha.NumRegs]int64) { r[rc] = int64(int32(r[ra] * b)) }
		case alpha.OpMulq:
			return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] * b }
		case alpha.OpUmulh:
			return func(r *[alpha.NumRegs]int64) { r[rc] = umulh(uint64(r[ra]), uint64(b)) }
		}
		return nil
	}
	switch i.Op {
	case alpha.OpAddl:
		return func(r *[alpha.NumRegs]int64) { r[rc] = int64(int32(r[ra] + r[rb])) }
	case alpha.OpSubl:
		return func(r *[alpha.NumRegs]int64) { r[rc] = int64(int32(r[ra] - r[rb])) }
	case alpha.OpAddq:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] + r[rb] }
	case alpha.OpSubq:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] - r[rb] }
	case alpha.OpS4addq:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra]*4 + r[rb] }
	case alpha.OpS8addq:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra]*8 + r[rb] }
	case alpha.OpCmpeq:
		return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(r[ra] == r[rb]) }
	case alpha.OpCmplt:
		return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(r[ra] < r[rb]) }
	case alpha.OpCmple:
		return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(r[ra] <= r[rb]) }
	case alpha.OpCmpult:
		return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(uint64(r[ra]) < uint64(r[rb])) }
	case alpha.OpCmpule:
		return func(r *[alpha.NumRegs]int64) { r[rc] = b2i(uint64(r[ra]) <= uint64(r[rb])) }
	case alpha.OpAnd:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] & r[rb] }
	case alpha.OpBic:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] &^ r[rb] }
	case alpha.OpBis:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] | r[rb] }
	case alpha.OpOrnot:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] | ^r[rb] }
	case alpha.OpXor:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] ^ r[rb] }
	case alpha.OpEqv:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] ^ ^r[rb] }
	case alpha.OpCmoveq:
		return func(r *[alpha.NumRegs]int64) {
			if r[ra] == 0 {
				r[rc] = r[rb]
			}
		}
	case alpha.OpCmovne:
		return func(r *[alpha.NumRegs]int64) {
			if r[ra] != 0 {
				r[rc] = r[rb]
			}
		}
	case alpha.OpSll:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] << (uint64(r[rb]) & 63) }
	case alpha.OpSrl:
		return func(r *[alpha.NumRegs]int64) { r[rc] = int64(uint64(r[ra]) >> (uint64(r[rb]) & 63)) }
	case alpha.OpSra:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] >> (uint64(r[rb]) & 63) }
	case alpha.OpMull:
		return func(r *[alpha.NumRegs]int64) { r[rc] = int64(int32(r[ra] * r[rb])) }
	case alpha.OpMulq:
		return func(r *[alpha.NumRegs]int64) { r[rc] = r[ra] * r[rb] }
	case alpha.OpUmulh:
		return func(r *[alpha.NumRegs]int64) { r[rc] = umulh(uint64(r[ra]), uint64(r[rb])) }
	}
	return nil
}
