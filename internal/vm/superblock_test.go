package vm

import (
	"crypto/sha256"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"atom/internal/aout"
)

// vmState captures everything architecturally observable about a halted
// machine, for differential comparison across dispatch modes.
type vmState struct {
	exit      int
	errText   string
	pc        uint64
	regs      [32]int64
	memDigest [32]byte
	icount    uint64
	loads     uint64
	stores    uint64
	unaligned uint64
	syscalls  uint64
	stdout    string
	files     string
}

func runMode(t *testing.T, exe *aout.File, cfg Config, mode Mode) (*Machine, vmState) {
	t.Helper()
	cfg.Mode = mode
	m, err := New(exe, cfg)
	if err != nil {
		t.Fatalf("New(%v): %v", mode, err)
	}
	code, rerr := m.Run()
	st := vmState{
		exit:      code,
		pc:        m.PC,
		memDigest: sha256.Sum256(m.Mem),
		icount:    m.Icount,
		loads:     m.Loads,
		stores:    m.Stores,
		unaligned: m.Unaligned,
		syscalls:  m.Syscalls,
		stdout:    string(m.Stdout),
	}
	if rerr != nil {
		st.errText = rerr.Error()
	}
	copy(st.regs[:], m.Reg[:])
	for _, p := range m.Paths() {
		st.files += p + "=" + string(m.FSOut[p]) + "\n"
	}
	return m, st
}

// diffModes runs the program under every dispatch mode and requires
// bit-identical architectural outcomes.
func diffModes(t *testing.T, exe *aout.File, cfg Config) vmState {
	t.Helper()
	_, plain := runMode(t, exe, cfg, ModePlain)
	for _, mode := range []Mode{ModePredecode, ModeSuperblock} {
		if _, got := runMode(t, exe, cfg, mode); got != plain {
			t.Errorf("%v diverged from plain:\n plain: %+v\n %v: %+v", mode, plain, mode, got)
		}
	}
	return plain
}

// TestSuperblockMatchesPlain: structured programs covering every block
// shape — loops, calls through bsr/jsr/ret, guards both ways, memory
// traffic, unaligned accesses, PAL services mid-stream, and file I/O.
func TestSuperblockMatchesPlain(t *testing.T) {
	progs := map[string]string{
		"loop-and-calls": `
	.text
	.globl __start
	.ent __start
__start:
	li s0, 300
	clr s1
outer:
	mov s0, a0
	bsr ra, twist
	addq s1, v0, s1
	subq s0, 1, s0
	bgt s0, outer
	and s1, 0xff, a0
	call_pal 0
	.end __start
	.ent twist
twist:
	lda sp, -16(sp)
	stq a0, 0(sp)
	ldq t0, 0(sp)
	s4addq t0, 3, t1
	xor t1, a0, v0
	lda sp, 16(sp)
	ret (ra)
	.end twist
`,
		"mem-and-pal": `
	.text
	.globl __start
	.ent __start
__start:
	la t0, buf
	li t1, 64
fill:
	stb t1, 0(t0)
	addq t0, 1, t0
	subq t1, 1, t1
	bne t1, fill
	ldq t2, 1(t0)       # unaligned
	li a0, 1
	la a1, msg
	li a2, 6
	call_pal 1
	li a0, 24
	call_pal 5          # sbrk mid-stream
	clr a0
	call_pal 0
	.end __start
	.data
msg:	.ascii "hello\n"
	.bss
	.comm buf, 128
`,
		"indirect-jumps": `
	.text
	.globl __start
	.ent __start
__start:
	li s2, 5
	clr s3
spin:
	la pv, helper
	jsr ra, (pv)
	addq s3, v0, s3
	subq s2, 1, s2
	bgt s2, spin
	mov s3, a0
	call_pal 0
	.end __start
	.ent helper
helper:
	cmplt s2, 3, t0
	cmovne t0, 7, t1
	cmoveq t0, 2, t1
	mov t1, v0
	ret (ra)
	.end helper
`,
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			diffModes(t, build(t, src), Config{})
		})
	}
}

// TestSuperblockRandomPrograms is the property test: pseudo-random short
// programs — straight-line arithmetic, forward guards, bounded loops,
// subroutine calls, loads and stores at mixed alignment — must retire
// bit-identical state under all three modes.
func TestSuperblockRandomPrograms(t *testing.T) {
	regs := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	rr := []string{"addq", "subq", "xor", "and", "bis", "bic", "cmpeq", "cmplt", "cmpule", "s4addq", "s8addq", "addl", "subl", "mull"}
	conds := []string{"beq", "bne", "blt", "bge", "ble", "bgt", "blbc", "blbs"}
	loads := []string{"ldq", "ldl", "ldwu", "ldbu"}
	stores := []string{"stq", "stl", "stw", "stb"}

	for seed := int64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			reg := func() string { return regs[r.Intn(len(regs))] }
			var b strings.Builder
			b.WriteString("\t.text\n\t.globl __start\n\t.ent __start\n__start:\n")
			b.WriteString("\tla s5, buf\n")
			for _, rg := range regs {
				fmt.Fprintf(&b, "\tli %s, %d\n", rg, r.Intn(4096)-2048)
			}
			label := 0
			emitOp := func() {
				switch r.Intn(7) {
				case 0, 1, 2: // register-register / literal arithmetic
					op := rr[r.Intn(len(rr))]
					if r.Intn(2) == 0 {
						fmt.Fprintf(&b, "\t%s %s, %d, %s\n", op, reg(), r.Intn(256), reg())
					} else {
						fmt.Fprintf(&b, "\t%s %s, %s, %s\n", op, reg(), reg(), reg())
					}
				case 3:
					fmt.Fprintf(&b, "\tsll %s, %d, %s\n", reg(), r.Intn(20), reg())
				case 4:
					fmt.Fprintf(&b, "\tcmovne %s, %d, %s\n", reg(), r.Intn(100), reg())
				case 5: // load at arbitrary alignment within the buffer
					fmt.Fprintf(&b, "\t%s %s, %d(s5)\n", loads[r.Intn(len(loads))], reg(), r.Intn(200))
				default: // store likewise
					fmt.Fprintf(&b, "\t%s %s, %d(s5)\n", stores[r.Intn(len(stores))], reg(), r.Intn(200))
				}
			}
			for seg := 0; seg < 12; seg++ {
				switch r.Intn(4) {
				case 0: // straight line
					for i := r.Intn(6) + 2; i > 0; i-- {
						emitOp()
					}
				case 1: // forward guard over a few ops
					label++
					fmt.Fprintf(&b, "\t%s %s, fwd%d\n", conds[r.Intn(len(conds))], reg(), label)
					for i := r.Intn(3) + 1; i > 0; i-- {
						emitOp()
					}
					fmt.Fprintf(&b, "fwd%d:\n", label)
				case 2: // bounded loop
					label++
					fmt.Fprintf(&b, "\tli s0, %d\n", r.Intn(40)+2)
					fmt.Fprintf(&b, "loop%d:\n", label)
					for i := r.Intn(4) + 1; i > 0; i-- {
						emitOp()
					}
					fmt.Fprintf(&b, "\tsubq s0, 1, s0\n\tbgt s0, loop%d\n", label)
				default: // call a generated subroutine
					fmt.Fprintf(&b, "\tbsr ra, sub%d\n", r.Intn(2))
				}
			}
			b.WriteString("\txor t0, t1, t2\n\taddq t2, t3, t2\n\tand t2, 0xff, a0\n\tcall_pal 0\n\t.end __start\n")
			for s := 0; s < 2; s++ {
				fmt.Fprintf(&b, "\t.ent sub%d\nsub%d:\n", s, s)
				for i := 0; i < 3; i++ {
					op := rr[r.Intn(len(rr))]
					fmt.Fprintf(&b, "\t%s %s, %d, %s\n", op, reg(), r.Intn(256), reg())
				}
				fmt.Fprintf(&b, "\tret (ra)\n\t.end sub%d\n", s)
			}
			b.WriteString("\t.bss\n\t.comm buf, 256\n")
			diffModes(t, build(t, b.String()), Config{})
		})
	}
}

// TestSuperblockMaxInstrBoundary: superblock dispatch must retire
// exactly up to the instruction budget — same Icount, same PC, and the
// same error text as the plain loop, at and around the exact boundary.
func TestSuperblockMaxInstrBoundary(t *testing.T) {
	exe := build(t, `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 50
loop:
	addq t1, t0, t1
	xor t1, t0, t2
	subq t0, 1, t0
	bne t0, loop
	clr a0
	call_pal 0
	.end __start
`)
	_, full := runMode(t, exe, Config{}, ModePlain)
	if full.errText != "" {
		t.Fatalf("unbounded run failed: %s", full.errText)
	}
	n := full.icount
	budgets := []uint64{1, 2, 3, n / 2, n - 2, n - 1, n, n + 1}
	for _, max := range budgets {
		cfg := Config{MaxInstr: max}
		_, plain := runMode(t, exe, cfg, ModePlain)
		_, sb := runMode(t, exe, cfg, ModeSuperblock)
		if sb != plain {
			t.Errorf("MaxInstr=%d: superblock %+v, plain %+v", max, sb, plain)
		}
		if max >= n && plain.errText != "" {
			t.Errorf("MaxInstr=%d >= natural icount %d but run errored: %s", max, n, plain.errText)
		}
		if max < n && !strings.Contains(plain.errText, fmt.Sprintf("budget %d exhausted", max)) {
			t.Errorf("MaxInstr=%d: error %q lacks exact budget text", max, plain.errText)
		}
	}
}

// TestSuperblockSelfModifyMidRun rewrites an instruction inside an
// already-executed, cached superblock — from inside that very block —
// and requires the patched semantics on the next pass, identically to
// the plain loop.
func TestSuperblockSelfModifyMidRun(t *testing.T) {
	exe := build(t, `
	.text
	.globl __start
	.ent __start
__start:
	li s0, 1
	la t0, patch
	la t1, target
	ldl t2, 0(t0)
again:
target:
	li a0, 13
	beq s0, done
	clr s0
	stl t2, 0(t1)
	br again
done:
	call_pal 0
patch:
	lda a0, 77(zero)
	.end __start
`)
	st := diffModes(t, exe, Config{})
	if st.exit != 77 {
		t.Errorf("exit = %d, want 77 (patched instruction not executed)", st.exit)
	}
	m, _ := runMode(t, exe, Config{}, ModeSuperblock)
	if m.sbInval == 0 {
		t.Error("store into a cached superblock recorded no invalidation")
	}
}

// TestSuperblockFaultDiagnostics: faults raised mid-block must carry the
// same pc/icount/cause text as per-instruction dispatch.
func TestSuperblockFaultDiagnostics(t *testing.T) {
	progs := map[string]string{
		"null-load": `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 3
	addq t0, t0, t1
	clr t2
	ldq t3, 8(t2)
	call_pal 0
	.end __start
`,
		"wild-store": `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 1
	sll t0, 40, t1
	stq t0, 0(t1)
	call_pal 0
	.end __start
`,
		"off-text-fall": `
	.text
	.globl __start
	.ent __start
__start:
	clr t9
	ret (t9)
	.end __start
`,
	}
	for name, src := range progs {
		t.Run(name, func(t *testing.T) {
			exe := build(t, src)
			_, plain := runMode(t, exe, Config{}, ModePlain)
			_, sb := runMode(t, exe, Config{}, ModeSuperblock)
			if plain.errText == "" {
				t.Fatal("expected a fault")
			}
			if sb != plain {
				t.Errorf("superblock fault state %+v\nplain fault state %+v", sb, plain)
			}
		})
	}
}

// TestSuperblockCounters: the cache reports its own activity.
func TestSuperblockCounters(t *testing.T) {
	exe := build(t, `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 2000
loop:
	addq t1, t0, t1
	subq t0, 1, t0
	bne t0, loop
	clr a0
	call_pal 0
	.end __start
`)
	m, st := runMode(t, exe, Config{}, ModeSuperblock)
	if st.errText != "" {
		t.Fatal(st.errText)
	}
	if m.sbBuilt == 0 {
		t.Error("no superblocks built")
	}
	if m.sbLinks == 0 {
		t.Error("no trace links installed")
	}
	if m.sbHits < 2000 {
		t.Errorf("sbHits = %d, want >= one per loop iteration", m.sbHits)
	}
	tot := Totals()
	if tot.SBBuilt == 0 || tot.SBHits == 0 {
		t.Errorf("process totals missed superblock activity: %+v", tot)
	}
}

func TestParseMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Mode
	}{
		{"plain", ModePlain},
		{"predecode", ModePredecode},
		{"superblock", ModeSuperblock},
		{"", ModeDefault},
	} {
		got, err := ParseMode(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseMode("turbo"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
	if got := ModeDefault.String(); got != "superblock" {
		t.Errorf("ModeDefault.String() = %q", got)
	}
	// The legacy unexported knobs map onto the mode ladder.
	if m := (&Config{noPredecode: true}).dispatchMode(); m != ModePlain {
		t.Errorf("noPredecode resolved to %v", m)
	}
	if m := (&Config{noSuperblock: true}).dispatchMode(); m != ModePredecode {
		t.Errorf("noSuperblock resolved to %v", m)
	}
	if m := (&Config{}).dispatchMode(); m != ModeSuperblock {
		t.Errorf("default resolved to %v", m)
	}
}
