package vm

import "sync/atomic"

// Process-wide execution totals, accumulated across every Machine's Run
// calls regardless of whether an obs context is attached. The live
// telemetry registry polls these as gauges, so a long-running daemon
// can report how much guest work it has retired without threading a
// context into every VM.
var (
	totalRuns      atomic.Uint64
	totalInstr     atomic.Uint64
	totalLoads     atomic.Uint64
	totalStores    atomic.Uint64
	totalSyscalls  atomic.Uint64
	totalUnaligned atomic.Uint64
	totalSBBuilt   atomic.Uint64
	totalSBHits    atomic.Uint64
	totalSBLinks   atomic.Uint64
	totalSBInval   atomic.Uint64
)

// TotalStats is a snapshot of process-wide VM activity.
type TotalStats struct {
	Runs      uint64 // completed Run calls
	Icount    uint64 // retired instructions
	Loads     uint64
	Stores    uint64
	Syscalls  uint64
	Unaligned uint64
	// Superblock-cache activity (zero outside ModeSuperblock).
	SBBuilt uint64 // superblocks harvested
	SBHits  uint64 // block executions, including trace-link transitions
	SBLinks uint64 // trace links installed
	SBInval uint64 // blocks dropped by stores into text
}

// Totals returns a snapshot of the process-wide execution totals.
func Totals() TotalStats {
	return TotalStats{
		Runs:      totalRuns.Load(),
		Icount:    totalInstr.Load(),
		Loads:     totalLoads.Load(),
		Stores:    totalStores.Load(),
		Syscalls:  totalSyscalls.Load(),
		Unaligned: totalUnaligned.Load(),
		SBBuilt:   totalSBBuilt.Load(),
		SBHits:    totalSBHits.Load(),
		SBLinks:   totalSBLinks.Load(),
		SBInval:   totalSBInval.Load(),
	}
}
