// Package vm executes linked executables for the Alpha instruction
// subset. It stands in for the Alpha AXP hardware and the OSF/1 kernel in
// the paper's environment; everything above it — linking, instrumentation,
// the two-copies-of-libc discipline, the sbrk schemes — is real binary
// manipulation, exactly as in ATOM. The VM itself performs no
// instrumentation and knows nothing about analysis routines.
//
// Memory layout follows the paper (Figure 4 and footnote 10): the stack
// begins at the start of the text segment and grows toward low memory;
// the heap starts at the end of uninitialized data and grows toward high
// memory. System services are provided through CALL_PAL, standing in for
// OSF/1 PALcode + syscalls: exit, read, write, open, close, sbrk (two
// zones, for ATOM's partitioned-heap option), and a cycle counter.
//
// The machine retires one instruction per "cycle"; the dynamic
// instruction count is the deterministic stand-in for execution time when
// reproducing Figure 6 (ratios of instrumented to uninstrumented runs).
package vm

import (
	"fmt"
	"io"
	"math/bits"
	"sort"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/obs"
)

// Config parameterizes a machine.
type Config struct {
	// MemSize is the size of the flat address space. Zero selects 64 MiB.
	MemSize uint64
	// Args are the program arguments (argv[0] is the program name and is
	// supplied separately as Arg0; if Arg0 is empty, "a.out" is used).
	Arg0 string
	Args []string
	// Stdin is the byte stream served to fd 0.
	Stdin []byte
	// FS maps path -> contents for the in-memory filesystem served by
	// open/read. Files written by the program appear in Machine.FSOut.
	FS map[string][]byte
	// MaxInstr bounds execution; 0 selects 2e9. Exceeding it is an error
	// (runaway or non-terminating program).
	MaxInstr uint64
	// AnalysisHeapOffset is the offset at which the analysis sbrk zone
	// begins, relative to the heap base. Zero links the two sbrk zones
	// (ATOM's default scheme: both allocate from the same heap, each
	// starting where the other left off).
	AnalysisHeapOffset uint64
	// Trace, when non-nil, receives one disassembled line per retired
	// instruction — for debugging tools and inserted code. Slow.
	Trace io.Writer
	// Obs, when non-nil, records each Run under a "vm.run" span and
	// flushes the machine's dynamic statistics (instructions, loads,
	// stores, unaligned accesses, CALL_PAL services) as counters.
	Obs *obs.Ctx
	// Probe, when non-nil, observes the machine's control flow: Call on
	// every retired subroutine call (bsr/jsr writing a link register),
	// Return on every ret, and — when SamplePeriod is non-zero — Sample
	// every SamplePeriod retired instructions. All callbacks are a pure
	// function of the instruction stream, so a deterministic program
	// yields a deterministic event sequence (internal/prof builds its
	// sampling profiler on this).
	Probe Probe
	// SamplePeriod is the sampling period in retired instructions; zero
	// disables Sample callbacks.
	SamplePeriod uint64
	// Mode selects the dispatch strategy (see mode.go); the zero value
	// selects superblock dispatch. All modes retire the identical
	// architectural state — Mode is an ablation/debugging knob, not a
	// semantic one. Trace and Probe callbacks force per-instruction
	// dispatch regardless of Mode, so observed event sequences are
	// bit-identical across modes.
	Mode Mode
	// noPredecode disables the text predecode cache, re-decoding every
	// retired instruction as earlier versions did. Ablation knob for
	// BenchmarkVMRun; not exported because there is no reason to run
	// this way in production (use Mode instead).
	noPredecode bool
	// noSuperblock caps dispatch at the predecode fast path, mirroring
	// noPredecode one layer up.
	noSuperblock bool
}

// Probe receives control-flow events from a running machine.
type Probe interface {
	// Sample reports the PC of the instruction that completed a sampling
	// period, before that instruction's side effects are applied.
	Sample(pc uint64)
	// Call reports a retired subroutine call and its target.
	Call(pc, target uint64)
	// Return reports a retired ret and its target.
	Return(pc, target uint64)
}

// Machine is one running instance.
type Machine struct {
	Mem []byte
	Reg [alpha.NumRegs]int64
	PC  uint64

	// Statistics.
	Icount    uint64 // instructions retired
	Loads     uint64
	Stores    uint64
	Unaligned uint64 // memory accesses not naturally aligned (kernel-fixup equivalent)
	Syscalls  uint64 // CALL_PAL services dispatched

	// Stdout and Stderr accumulate writes to fds 1 and 2.
	Stdout []byte
	Stderr []byte
	// FSOut holds the final contents of files created or rewritten by
	// the program, keyed by path (populated at close or exit).
	FSOut map[string][]byte

	exe *aout.File
	cfg Config
	// code/codeOK predecode the text segment at load time, one slot per
	// word: Step fetches decoded instructions instead of calling
	// alpha.Decode per retired instruction. Text is not all code —
	// instrumented executables carry analysis data and constant blobs in
	// the text segment — so undecodable words simply mark their slot
	// invalid and fault only if fetched. Stores into text (none of our
	// programs do this, but the ISA allows it) re-decode the affected
	// slots to keep the cache coherent.
	code    []alpha.Inst
	codeOK  []bool
	textEnd uint64
	// Superblock cache (ModeSuperblock only; see superblock.go). sbByIdx
	// maps text word index -> block entered at that PC (sbNone marks
	// unbuildable entries); sbAll is the registry invalidation scans;
	// sbGen invalidates trace links wholesale when bumped.
	sbByIdx  []*superblock
	sbAll    []*superblock
	sbGen    uint64
	sbBuilt  uint64 // superblocks harvested
	sbHits   uint64 // block executions (incl. link transitions)
	sbLinks  uint64 // trace links installed
	sbInval  uint64 // blocks dropped by stores into text
	heapBase uint64
	brk      uint64 // application zone break
	brk2     uint64 // analysis zone break (== brk storage when linked)
	brk2Sep  bool
	files    []*openFile
	stdinPos int
	halted   bool
	exitCode int
}

type openFile struct {
	path    string
	reading bool
	data    []byte
	pos     int
	closed  bool
}

// New loads an executable into a fresh machine.
func New(exe *aout.File, cfg Config) (*Machine, error) {
	if !exe.Linked {
		return nil, fmt.Errorf("vm: executable is not linked")
	}
	if cfg.MemSize == 0 {
		cfg.MemSize = 64 << 20
	}
	if cfg.MaxInstr == 0 {
		cfg.MaxInstr = 2_000_000_000
	}
	bssEnd := exe.BssAddr + exe.Bss
	if bssEnd > cfg.MemSize || exe.TextAddr+uint64(len(exe.Text)) > cfg.MemSize {
		return nil, fmt.Errorf("vm: image (ends %#x) exceeds memory size %#x", bssEnd, cfg.MemSize)
	}
	m := &Machine{
		Mem:   make([]byte, cfg.MemSize),
		exe:   exe,
		cfg:   cfg,
		FSOut: map[string][]byte{},
	}
	copy(m.Mem[exe.TextAddr:], exe.Text)
	copy(m.Mem[exe.DataAddr:], exe.Data)
	m.textEnd = exe.TextAddr + uint64(len(exe.Text))
	if mode := cfg.dispatchMode(); mode != ModePlain {
		n := len(exe.Text) / 4
		m.code = make([]alpha.Inst, n)
		m.codeOK = make([]bool, n)
		for i := 0; i < n; i++ {
			if inst, err := alpha.Decode(le32(exe.Text[i*4:])); err == nil {
				m.code[i], m.codeOK[i] = inst, true
			}
		}
		if mode == ModeSuperblock {
			m.sbByIdx = make([]*superblock, n)
		}
	}
	m.heapBase = align8(bssEnd)
	m.brk = m.heapBase
	m.brk2 = m.heapBase + cfg.AnalysisHeapOffset
	m.brk2Sep = cfg.AnalysisHeapOffset != 0
	m.PC = exe.Entry

	// fds 0,1,2 are pre-opened.
	m.files = []*openFile{
		{path: "<stdin>", reading: true, data: cfg.Stdin},
		{path: "<stdout>"},
		{path: "<stderr>"},
	}

	// Build the initial stack: strings, argv array, argc; sp points at
	// argc. The stack base is the start of text, growing down.
	sp := exe.TextAddr
	args := append([]string{cfg.Arg0}, cfg.Args...)
	if args[0] == "" {
		args[0] = "a.out"
	}
	ptrs := make([]uint64, len(args))
	for i := len(args) - 1; i >= 0; i-- {
		b := append([]byte(args[i]), 0)
		sp -= uint64(len(b))
		copy(m.Mem[sp:], b)
		ptrs[i] = sp
	}
	sp &^= 7
	sp -= 8 // argv NULL terminator
	for i := len(ptrs) - 1; i >= 0; i-- {
		sp -= 8
		m.put64(sp, ptrs[i])
	}
	sp -= 8
	m.put64(sp, uint64(len(args)))
	m.Reg[alpha.SP] = int64(sp)
	return m, nil
}

func align8(v uint64) uint64 { return (v + 7) &^ 7 }

func (m *Machine) put64(addr, v uint64) {
	for i := 0; i < 8; i++ {
		m.Mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

// Exited reports whether the program has halted, and its exit status.
func (m *Machine) Exited() (bool, int) { return m.halted, m.exitCode }

// Run executes until the program halts, fuel is exhausted, or a fault
// occurs. It returns the exit status.
func (m *Machine) Run() (int, error) {
	// Process-wide totals flush as deltas, like the obs counters below,
	// so repeated Run/Step mixes and many machines aggregate correctly.
	ti, tl, ts, tu, ty := m.Icount, m.Loads, m.Stores, m.Unaligned, m.Syscalls
	sb0, sh0, sl0, sv0 := m.sbBuilt, m.sbHits, m.sbLinks, m.sbInval
	defer func() {
		totalRuns.Add(1)
		totalInstr.Add(m.Icount - ti)
		totalLoads.Add(m.Loads - tl)
		totalStores.Add(m.Stores - ts)
		totalUnaligned.Add(m.Unaligned - tu)
		totalSyscalls.Add(m.Syscalls - ty)
		totalSBBuilt.Add(m.sbBuilt - sb0)
		totalSBHits.Add(m.sbHits - sh0)
		totalSBLinks.Add(m.sbLinks - sl0)
		totalSBInval.Add(m.sbInval - sv0)
	}()
	if m.cfg.Obs.Enabled() {
		var spanAttrs []obs.Attr
		if m.cfg.Arg0 != "" {
			spanAttrs = append(spanAttrs, obs.String("program", m.cfg.Arg0))
		}
		_, sp := m.cfg.Obs.Start("vm.run", spanAttrs...)
		// Counters are flushed as deltas so repeated Run/Step mixes and
		// multiple machines sharing one context aggregate correctly.
		i0, l0, s0, u0, p0 := m.Icount, m.Loads, m.Stores, m.Unaligned, m.Syscalls
		defer func() {
			m.cfg.Obs.Count("vm.icount", int64(m.Icount-i0))
			m.cfg.Obs.Count("vm.loads", int64(m.Loads-l0))
			m.cfg.Obs.Count("vm.stores", int64(m.Stores-s0))
			m.cfg.Obs.Count("vm.unaligned", int64(m.Unaligned-u0))
			m.cfg.Obs.Count("vm.syscalls", int64(m.Syscalls-p0))
			if m.sbByIdx != nil {
				m.cfg.Obs.Count("vm.sb.built", int64(m.sbBuilt-sb0))
				m.cfg.Obs.Count("vm.sb.hits", int64(m.sbHits-sh0))
				m.cfg.Obs.Count("vm.sb.links", int64(m.sbLinks-sl0))
				m.cfg.Obs.Count("vm.sb.invalidations", int64(m.sbInval-sv0))
			}
			sp.SetAttr(obs.Int("icount", int64(m.Icount-i0)))
			sp.End()
		}()
	}
	// Hottest path: superblock dispatch retires whole harvested blocks
	// per loop iteration. Any per-instruction observer — tracer, probe
	// (the profiler) — forces the per-instruction paths below so event
	// sequences stay bit-identical.
	if m.sbByIdx != nil && m.cfg.Trace == nil && m.cfg.Probe == nil {
		return m.runSuperblocks()
	}
	// Hot path: without a tracer or a sampling probe there is nothing to
	// check per retired instruction, so the loop runs fetch/count/execute
	// only. Probe Call/Return events still fire — they are tested on the
	// control-transfer opcodes inside exec, not per instruction.
	if m.cfg.Trace == nil && (m.cfg.Probe == nil || m.cfg.SamplePeriod == 0) && m.code != nil {
		for !m.halted {
			if m.Icount >= m.cfg.MaxInstr {
				return 0, budgetErr(m.cfg.MaxInstr, m.PC)
			}
			if m.PC < m.exe.TextAddr || m.PC+4 > m.textEnd || m.PC%4 != 0 {
				return 0, m.faultf("instruction fetch from %#x outside text", m.PC)
			}
			idx := (m.PC - m.exe.TextAddr) / 4
			if !m.codeOK[idx] {
				return 0, m.decodeFault()
			}
			m.Icount++
			if err := m.exec(m.code[idx]); err != nil {
				return 0, err
			}
		}
		return m.exitCode, nil
	}
	for !m.halted {
		if m.Icount >= m.cfg.MaxInstr {
			return 0, budgetErr(m.cfg.MaxInstr, m.PC)
		}
		if err := m.Step(); err != nil {
			return 0, err
		}
	}
	return m.exitCode, nil
}

// budgetErr is the MaxInstr exhaustion error; one constructor so every
// dispatch mode produces the identical text.
func budgetErr(max, pc uint64) error {
	return fmt.Errorf("vm: instruction budget %d exhausted at pc %#x", max, pc)
}

// fetch returns the decoded instruction at m.PC, from the predecode
// cache when present.
func (m *Machine) fetch() (alpha.Inst, error) {
	if m.PC < m.exe.TextAddr || m.PC+4 > m.textEnd || m.PC%4 != 0 {
		return alpha.Inst{}, m.faultf("instruction fetch from %#x outside text", m.PC)
	}
	if m.code != nil {
		idx := (m.PC - m.exe.TextAddr) / 4
		if !m.codeOK[idx] {
			return alpha.Inst{}, m.decodeFault()
		}
		return m.code[idx], nil
	}
	inst, err := alpha.Decode(le32(m.Mem[m.PC:]))
	if err != nil {
		return alpha.Inst{}, m.faultf("%v", err)
	}
	return inst, nil
}

// decodeFault re-decodes the word at m.PC to produce the same
// diagnostic the un-cached path would have.
func (m *Machine) decodeFault() error {
	_, err := alpha.Decode(le32(m.Mem[m.PC:]))
	return m.faultf("%v", err)
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Step executes a single instruction.
func (m *Machine) Step() error {
	if m.halted {
		return fmt.Errorf("vm: step after halt")
	}
	inst, err := m.fetch()
	if err != nil {
		return err
	}
	if m.cfg.Trace != nil {
		fmt.Fprintf(m.cfg.Trace, "%#x: %s\n", m.PC, inst)
	}
	m.Icount++
	if m.cfg.Probe != nil && m.cfg.SamplePeriod != 0 && m.Icount%m.cfg.SamplePeriod == 0 {
		m.cfg.Probe.Sample(m.PC)
	}
	return m.exec(inst)
}

// exec applies one decoded instruction's side effects and advances the
// PC. The caller has already counted the instruction.
func (m *Machine) exec(inst alpha.Inst) error {
	next := m.PC + 4

	switch inst.Op {
	case alpha.OpCallPal:
		done, err := m.pal(inst.PalFn)
		if err != nil {
			return err
		}
		if done {
			return nil
		}

	case alpha.OpLda:
		m.set(inst.Ra, m.Reg[inst.Rb]+int64(inst.Disp))
	case alpha.OpLdah:
		m.set(inst.Ra, m.Reg[inst.Rb]+int64(inst.Disp)<<16)

	case alpha.OpLdbu, alpha.OpLdwu, alpha.OpLdl, alpha.OpLdq:
		v, err := m.load(inst)
		if err != nil {
			return err
		}
		m.set(inst.Ra, v)

	case alpha.OpStb, alpha.OpStw, alpha.OpStl, alpha.OpStq:
		if err := m.store(inst); err != nil {
			return err
		}

	case alpha.OpBr, alpha.OpBsr:
		m.set(inst.Ra, int64(next))
		next = uint64(int64(next) + int64(inst.Disp)*4)
		if m.cfg.Probe != nil && inst.Op == alpha.OpBsr && inst.Ra != alpha.Zero {
			m.cfg.Probe.Call(m.PC, next)
		}

	case alpha.OpBlbc, alpha.OpBeq, alpha.OpBlt, alpha.OpBle, alpha.OpBlbs, alpha.OpBne, alpha.OpBge, alpha.OpBgt:
		if inst.CondHolds(m.Reg[inst.Ra]) {
			next = uint64(int64(next) + int64(inst.Disp)*4)
		}

	case alpha.OpJmp, alpha.OpJsr, alpha.OpRet:
		target := uint64(m.Reg[inst.Rb]) &^ 3
		m.set(inst.Ra, int64(next))
		next = target
		if m.cfg.Probe != nil {
			switch {
			case inst.Op == alpha.OpJsr && inst.Ra != alpha.Zero:
				// A jsr that discards its return address is a computed
				// goto, not a call; only link-writing jsrs push a frame.
				m.cfg.Probe.Call(m.PC, target)
			case inst.Op == alpha.OpRet:
				m.cfg.Probe.Return(m.PC, target)
			}
		}

	default:
		v, err := m.operate(inst)
		if err != nil {
			return err
		}
		m.set(inst.Rc, v)
	}
	m.PC = next
	return nil
}

func (m *Machine) set(r alpha.Reg, v int64) {
	if r != alpha.Zero {
		m.Reg[r] = v
	}
}

// rbOrLit returns the second operand of an operate instruction.
func (m *Machine) rbOrLit(i alpha.Inst) int64 {
	if i.HasLit {
		return int64(i.Lit)
	}
	return m.Reg[i.Rb]
}

func (m *Machine) operate(i alpha.Inst) (int64, error) {
	a := m.Reg[i.Ra]
	b := m.rbOrLit(i)
	switch i.Op {
	case alpha.OpAddl:
		return int64(int32(a + b)), nil
	case alpha.OpSubl:
		return int64(int32(a - b)), nil
	case alpha.OpAddq:
		return a + b, nil
	case alpha.OpSubq:
		return a - b, nil
	case alpha.OpS4addq:
		return a*4 + b, nil
	case alpha.OpS8addq:
		return a*8 + b, nil
	case alpha.OpCmpeq:
		return b2i(a == b), nil
	case alpha.OpCmplt:
		return b2i(a < b), nil
	case alpha.OpCmple:
		return b2i(a <= b), nil
	case alpha.OpCmpult:
		return b2i(uint64(a) < uint64(b)), nil
	case alpha.OpCmpule:
		return b2i(uint64(a) <= uint64(b)), nil
	case alpha.OpAnd:
		return a & b, nil
	case alpha.OpBic:
		return a &^ b, nil
	case alpha.OpBis:
		return a | b, nil
	case alpha.OpOrnot:
		return a | ^b, nil
	case alpha.OpXor:
		return a ^ b, nil
	case alpha.OpEqv:
		return a ^ ^b, nil
	case alpha.OpCmoveq:
		if a == 0 {
			return b, nil
		}
		return m.Reg[i.Rc], nil
	case alpha.OpCmovne:
		if a != 0 {
			return b, nil
		}
		return m.Reg[i.Rc], nil
	case alpha.OpSll:
		return a << (uint64(b) & 63), nil
	case alpha.OpSrl:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case alpha.OpSra:
		return a >> (uint64(b) & 63), nil
	case alpha.OpMull:
		return int64(int32(a * b)), nil
	case alpha.OpMulq:
		return a * b, nil
	case alpha.OpUmulh:
		return umulh(uint64(a), uint64(b)), nil
	}
	return 0, m.faultf("unimplemented operate %s", i.Op)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func umulh(a, b uint64) int64 {
	hi, _ := bits.Mul64(a, b)
	return int64(hi)
}

func (m *Machine) checkAddr(addr uint64, size int) error {
	if addr < 4096 {
		return m.faultf("null-page access at %#x", addr)
	}
	if addr+uint64(size) > uint64(len(m.Mem)) {
		return m.faultf("access at %#x beyond memory", addr)
	}
	return nil
}

func (m *Machine) load(i alpha.Inst) (int64, error) {
	addr := uint64(m.Reg[i.Rb] + int64(i.Disp))
	size := i.Op.MemBytes()
	if err := m.checkAddr(addr, size); err != nil {
		return 0, err
	}
	m.Loads++
	if addr%uint64(size) != 0 {
		m.Unaligned++
	}
	var v uint64
	for j := size - 1; j >= 0; j-- {
		v = v<<8 | uint64(m.Mem[addr+uint64(j)])
	}
	switch i.Op {
	case alpha.OpLdl:
		return int64(int32(v)), nil
	default:
		return int64(v), nil
	}
}

func (m *Machine) store(i alpha.Inst) error {
	addr := uint64(m.Reg[i.Rb] + int64(i.Disp))
	size := i.Op.MemBytes()
	if err := m.checkAddr(addr, size); err != nil {
		return err
	}
	m.Stores++
	if addr%uint64(size) != 0 {
		m.Unaligned++
	}
	v := uint64(m.Reg[i.Ra])
	for j := 0; j < size; j++ {
		m.Mem[addr+uint64(j)] = byte(v >> (8 * j))
	}
	if m.code != nil && addr < m.textEnd && addr+uint64(size) > m.exe.TextAddr {
		m.redecode(addr, size)
		if m.sbByIdx != nil {
			m.sbInvalidate(addr, size)
		}
	}
	return nil
}

// redecode refreshes the predecode cache slots covering a store into
// the text segment (self-modifying code; nothing we run does this, but
// the cache must not change the machine's semantics).
func (m *Machine) redecode(addr uint64, size int) {
	lo := addr &^ 3
	hi := (addr + uint64(size) + 3) &^ 3
	for a := lo; a < hi; a += 4 {
		if a < m.exe.TextAddr || a+4 > m.textEnd {
			continue
		}
		idx := (a - m.exe.TextAddr) / 4
		inst, err := alpha.Decode(le32(m.Mem[a:]))
		m.code[idx], m.codeOK[idx] = inst, err == nil
	}
}

func (m *Machine) faultf(format string, args ...any) error {
	return fmt.Errorf("vm: fault at pc %#x (icount %d): %s", m.PC, m.Icount, fmt.Sprintf(format, args...))
}

// Paths returns the sorted list of files written by the program.
func (m *Machine) Paths() []string {
	var out []string
	for p := range m.FSOut {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
