package vm

import (
	"math/rand"
	"strings"
	"testing"

	"atom/internal/alpha"
	"atom/internal/aout"
	"atom/internal/asm"
	"atom/internal/link"
)

// build assembles and links a standalone program.
func build(t testing.TB, src string) *aout.File {
	t.Helper()
	obj, err := asm.Assemble("t.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	exe, err := link.Link(link.Config{}, []*aout.File{obj})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return exe
}

// run builds and executes a program to completion.
func run(t *testing.T, src string, cfg Config) (*Machine, int) {
	t.Helper()
	m, err := New(build(t, src), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	code, err := m.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m, code
}

func TestExitCode(t *testing.T) {
	_, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	li a0, 42
	call_pal 0
	.end __start
`, Config{})
	if code != 42 {
		t.Errorf("exit code = %d, want 42", code)
	}
}

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..100 = 5050; exit code = 5050 % 256 = 186.
	m, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	clr t0          # sum
	li t1, 100      # i
loop:
	addq t0, t1, t0
	subq t1, 1, t1
	bgt t1, loop
	and t0, 0xff, a0
	call_pal 0
	.end __start
`, Config{})
	if code != 5050%256 {
		t.Errorf("exit = %d, want %d", code, 5050%256)
	}
	if m.Icount < 300 {
		t.Errorf("icount = %d, implausibly small", m.Icount)
	}
}

func TestHelloStdout(t *testing.T) {
	m, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	li a0, 1
	la a1, msg
	li a2, 14
	call_pal 1
	clr a0
	call_pal 0
	.end __start
	.data
msg:	.ascii "hello, world!\n"
`, Config{})
	if code != 0 {
		t.Errorf("exit = %d", code)
	}
	if string(m.Stdout) != "hello, world!\n" {
		t.Errorf("stdout = %q", m.Stdout)
	}
}

func TestMemoryAndCalls(t *testing.T) {
	// Call a procedure that stores then reloads a value via the stack.
	m, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	li a0, 7
	bsr ra, double
	mov v0, a0
	call_pal 0
	.end __start
	.ent double
double:
	lda sp, -16(sp)
	stq a0, 0(sp)
	ldq t0, 0(sp)
	addq t0, t0, v0
	lda sp, 16(sp)
	ret (ra)
	.end double
`, Config{})
	if code != 14 {
		t.Errorf("exit = %d, want 14", code)
	}
	if m.Loads != 1 || m.Stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", m.Loads, m.Stores)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	_, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	la t0, buf
	li t1, -2
	stq t1, 0(t0)
	ldbu t2, 0(t0)       # 0xFE
	ldwu t3, 0(t0)       # 0xFFFE
	ldl t4, 0(t0)        # -2 sign-extended
	ldq t5, 0(t0)        # -2
	# verify: t2 == 0xFE
	subq t2, 0xFE, t6
	bne t6, bad
	# t3 == 0xFFFE: compare via computed value
	li t6, 0xFFFE
	subq t3, t6, t6
	bne t6, bad
	addq t4, 2, t6
	bne t6, bad
	addq t5, 2, t6
	bne t6, bad
	# byte store then reload
	li t1, 0x41
	stb t1, 3(t0)
	ldbu t2, 3(t0)
	subq t2, 0x41, t6
	bne t6, bad
	# stw / stl
	li t1, 0x1234
	stw t1, 8(t0)
	ldwu t2, 8(t0)
	subq t2, t1, t6
	bne t6, bad
	li t1, -5
	stl t1, 16(t0)
	ldl t2, 16(t0)
	subq t2, t1, t6
	bne t6, bad
	clr a0
	call_pal 0
bad:
	li a0, 1
	call_pal 0
	.end __start
	.bss
	.comm buf, 32
`, Config{})
	if code != 0 {
		t.Error("width test failed inside the VM")
	}
}

func TestUnalignedCounted(t *testing.T) {
	m, _ := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	la t0, buf
	ldq t1, 1(t0)   # unaligned quad load
	ldl t2, 2(t0)   # aligned for 2 but not 4
	ldl t3, 4(t0)   # aligned
	clr a0
	call_pal 0
	.end __start
	.bss
	.comm buf, 32
`, Config{})
	if m.Unaligned != 2 {
		t.Errorf("unaligned = %d, want 2", m.Unaligned)
	}
}

func TestArgvLayout(t *testing.T) {
	m, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	ldq t0, 0(sp)    # argc
	mov t0, a0
	call_pal 0
	.end __start
`, Config{Args: []string{"x", "yz"}})
	if code != 3 {
		t.Errorf("argc = %d, want 3", code)
	}
	_ = m
}

func TestArgvStrings(t *testing.T) {
	// Print argv[1].
	m, _ := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	ldq t0, 16(sp)   # argv[1] (sp: argc, argv[0], argv[1], ...)
	mov t0, a1
	# strlen inline
	clr a2
len:
	addq t0, a2, t1
	ldbu t2, 0(t1)
	beq t2, done
	addq a2, 1, a2
	br len
done:
	li a0, 1
	call_pal 1
	clr a0
	call_pal 0
	.end __start
`, Config{Args: []string{"hello-arg"}})
	if string(m.Stdout) != "hello-arg" {
		t.Errorf("stdout = %q", m.Stdout)
	}
}

func TestFileIO(t *testing.T) {
	m, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	# read 5 bytes from "in.txt"
	la a0, inpath
	clr a1
	call_pal 3       # open read
	blt v0, fail
	mov v0, s0
	mov s0, a0
	la a1, buf
	li a2, 5
	call_pal 2       # read
	mov s0, a0
	call_pal 4       # close
	# write them to "out.txt"
	la a0, outpath
	li a1, 1
	call_pal 3       # open write
	blt v0, fail
	mov v0, s1
	mov s1, a0
	la a1, buf
	li a2, 5
	call_pal 1       # write
	mov s1, a0
	call_pal 4       # close
	clr a0
	call_pal 0
fail:
	li a0, 1
	call_pal 0
	.end __start
	.data
inpath:	.asciiz "in.txt"
outpath: .asciiz "out.txt"
	.bss
	.comm buf, 16
`, Config{FS: map[string][]byte{"in.txt": []byte("abcdefgh")}})
	if code != 0 {
		t.Fatal("program reported failure")
	}
	if string(m.FSOut["out.txt"]) != "abcde" {
		t.Errorf("out.txt = %q", m.FSOut["out.txt"])
	}
}

func TestOpenMissingFile(t *testing.T) {
	_, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	la a0, path
	clr a1
	call_pal 3
	blt v0, missing
	clr a0
	call_pal 0
missing:
	li a0, 9
	call_pal 0
	.end __start
	.data
path:	.asciiz "nope"
`, Config{})
	if code != 9 {
		t.Errorf("exit = %d, want 9 (open should fail)", code)
	}
}

func TestSbrkZones(t *testing.T) {
	src := `
	.text
	.globl __start
	.ent __start
__start:
	li a0, 64
	call_pal 5       # app sbrk
	mov v0, s0
	li a0, 64
	call_pal 7       # analysis sbrk
	mov v0, s1
	subq s1, s0, a0  # difference between zone starts
	call_pal 0
	.end __start
`
	// Linked zones: second sbrk starts where the first left off (+64).
	_, code := run(t, src, Config{})
	if code != 64 {
		t.Errorf("linked zones: delta = %d, want 64", code)
	}
	// Partitioned zones: analysis zone starts at heapBase+offset.
	_, code = run(t, src, Config{AnalysisHeapOffset: 1 << 20})
	if code != 1<<20 {
		t.Errorf("partitioned zones: delta = %d, want %d", code, 1<<20)
	}
}

func TestSbrkPartitionedExactDelta(t *testing.T) {
	src := `
	.text
	.globl __start
	.ent __start
__start:
	clr a0
	call_pal 5
	mov v0, s0
	clr a0
	call_pal 7
	subq v0, s0, t0
	srl t0, 12, a0   # delta in 4KiB pages
	call_pal 0
	.end __start
`
	_, code := run(t, src, Config{AnalysisHeapOffset: 40 << 12})
	if code != 40 {
		t.Errorf("delta pages = %d, want 40", code)
	}
}

func TestNullPageFault(t *testing.T) {
	m, err := New(build(t, `
	.text
	.globl __start
	.ent __start
__start:
	clr t0
	ldq t1, 0(t0)
	call_pal 0
	.end __start
`), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "null-page") {
		t.Errorf("err = %v, want null-page fault", err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	m, err := New(build(t, `
	.text
	.globl __start
	.ent __start
__start:
loop:	br loop
	.end __start
`), Config{MaxInstr: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Errorf("err = %v, want budget exhaustion", err)
	}
}

func TestCyclesPal(t *testing.T) {
	_, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	call_pal 6
	mov v0, s0
	nop
	nop
	nop
	call_pal 6
	subq v0, s0, a0
	call_pal 0
	.end __start
`, Config{})
	if code != 5 { // mov, nop, nop, nop, second call_pal
		t.Errorf("cycle delta = %d, want 5", code)
	}
}

// TestOperateSemanticsQuick cross-checks VM operate semantics against Go
// semantics on random inputs.
func TestOperateSemanticsQuick(t *testing.T) {
	exe := build(t, `
	.text
	.globl __start
	.ent __start
__start:
	call_pal 0
	.end __start
`)
	m, err := New(exe, Config{})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	ops := []struct {
		op alpha.Op
		f  func(a, b int64) int64
	}{
		{alpha.OpAddq, func(a, b int64) int64 { return a + b }},
		{alpha.OpSubq, func(a, b int64) int64 { return a - b }},
		{alpha.OpAddl, func(a, b int64) int64 { return int64(int32(a + b)) }},
		{alpha.OpSubl, func(a, b int64) int64 { return int64(int32(a - b)) }},
		{alpha.OpMulq, func(a, b int64) int64 { return a * b }},
		{alpha.OpMull, func(a, b int64) int64 { return int64(int32(a * b)) }},
		{alpha.OpS4addq, func(a, b int64) int64 { return a*4 + b }},
		{alpha.OpS8addq, func(a, b int64) int64 { return a*8 + b }},
		{alpha.OpAnd, func(a, b int64) int64 { return a & b }},
		{alpha.OpBis, func(a, b int64) int64 { return a | b }},
		{alpha.OpBic, func(a, b int64) int64 { return a &^ b }},
		{alpha.OpOrnot, func(a, b int64) int64 { return a | ^b }},
		{alpha.OpXor, func(a, b int64) int64 { return a ^ b }},
		{alpha.OpEqv, func(a, b int64) int64 { return a ^ ^b }},
		{alpha.OpSll, func(a, b int64) int64 { return a << (uint64(b) & 63) }},
		{alpha.OpSrl, func(a, b int64) int64 { return int64(uint64(a) >> (uint64(b) & 63)) }},
		{alpha.OpSra, func(a, b int64) int64 { return a >> (uint64(b) & 63) }},
		{alpha.OpCmpeq, func(a, b int64) int64 { return b2i(a == b) }},
		{alpha.OpCmplt, func(a, b int64) int64 { return b2i(a < b) }},
		{alpha.OpCmple, func(a, b int64) int64 { return b2i(a <= b) }},
		{alpha.OpCmpult, func(a, b int64) int64 { return b2i(uint64(a) < uint64(b)) }},
		{alpha.OpCmpule, func(a, b int64) int64 { return b2i(uint64(a) <= uint64(b)) }},
	}
	for i := 0; i < 20000; i++ {
		c := ops[r.Intn(len(ops))]
		a, b := r.Int63()-r.Int63(), r.Int63()-r.Int63()
		m.Reg[alpha.T0], m.Reg[alpha.T1] = a, b
		got, err := m.operate(alpha.RR(c.op, alpha.T0, alpha.T1, alpha.T2))
		if err != nil {
			t.Fatal(err)
		}
		if want := c.f(a, b); got != want {
			t.Fatalf("%s(%d, %d) = %d, want %d", c.op, a, b, got, want)
		}
		// Literal form uses an unsigned 8-bit operand.
		lit := uint8(r.Uint32())
		got, _ = m.operate(alpha.RI(c.op, alpha.T0, lit, alpha.T2))
		if want := c.f(a, int64(lit)); got != want {
			t.Fatalf("%s(%d, #%d) = %d, want %d", c.op, a, lit, got, want)
		}
	}
}

func TestUmulh(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1 << 32, 1 << 32, 1},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1},
		{0xDEADBEEF12345678, 0xCAFEBABE87654321, 0xB092AB7C0D047972},
	}
	for _, c := range cases {
		if got := uint64(umulh(c.a, c.b)); got != c.want {
			t.Errorf("umulh(%#x, %#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

func TestCmov(t *testing.T) {
	_, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	clr t0
	li t1, 5
	li t2, 9
	cmoveq t0, t1, t2    # t0==0, so t2 = 5
	mov t2, a0
	li t3, 1
	li t4, 77
	cmoveq t3, t4, a0    # t3!=0, a0 unchanged (5)
	cmovne t3, 2, t5     # t3!=0, t5 = 2
	addq a0, t5, a0      # 7
	call_pal 0
	.end __start
`, Config{})
	if code != 7 {
		t.Errorf("cmov result = %d, want 7", code)
	}
}

func TestJsrIndirect(t *testing.T) {
	_, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	la pv, target
	jsr ra, (pv)
	mov v0, a0
	call_pal 0
	.end __start
	.ent target
target:
	li v0, 33
	ret (ra)
	.end target
`, Config{})
	if code != 33 {
		t.Errorf("exit = %d, want 33", code)
	}
}

func TestStepAfterHalt(t *testing.T) {
	m, _ := run(t, "\t.text\n\t.globl __start\n\t.ent __start\n__start:\tclr a0\n\tcall_pal 0\n\t.end __start\n", Config{})
	if err := m.Step(); err == nil {
		t.Error("Step after halt succeeded")
	}
	halted, code := m.Exited()
	if !halted || code != 0 {
		t.Errorf("Exited = %v, %d", halted, code)
	}
}

func TestWriteToReopenedFile(t *testing.T) {
	// A file written then reopened for read serves the written bytes.
	m, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	la a0, p
	li a1, 1
	call_pal 3
	mov v0, s0
	mov s0, a0
	la a1, msg
	li a2, 3
	call_pal 1
	mov s0, a0
	call_pal 4
	# reopen and read back
	la a0, p
	clr a1
	call_pal 3
	mov v0, s1
	mov s1, a0
	la a1, buf
	li a2, 3
	call_pal 2
	la t0, buf
	ldbu a0, 1(t0)
	call_pal 0
	.end __start
	.data
p:	.asciiz "f.out"
msg:	.ascii "XYZ"
	.bss
	.comm buf, 8
`, Config{})
	if code != 'Y' {
		t.Errorf("read-back byte = %d, want %d", code, 'Y')
	}
	_ = m
}

func TestTraceOutput(t *testing.T) {
	var buf strings.Builder
	exe := build(t, `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 3
	addq t0, t0, t1
	clr a0
	call_pal 0
	.end __start
`)
	m, err := New(exe, Config{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	tr := buf.String()
	for _, want := range []string{"lda t0, 3(zero)", "addq t0, t0, t1", "call_pal 0x0"} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace lacks %q:\n%s", want, tr)
		}
	}
	if lines := strings.Count(tr, "\n"); lines != int(m.Icount) {
		t.Errorf("trace has %d lines, retired %d instructions", lines, m.Icount)
	}
}

// TestPredecodeMatchesDecodeEach: the predecode cache must be invisible —
// same outputs, same counts, same exit code as re-decoding per fetch.
func TestPredecodeMatchesDecodeEach(t *testing.T) {
	src := `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 1000
	clr t1
loop:
	addq t1, t0, t1
	subq t0, 1, t0
	bne t0, loop
	and t1, 255, a0
	call_pal 0
	.end __start
`
	exe := build(t, src)
	var icounts [2]uint64
	var codes [2]int
	for i, off := range []bool{false, true} {
		m, err := New(exe, Config{noPredecode: off})
		if err != nil {
			t.Fatal(err)
		}
		code, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		icounts[i], codes[i] = m.Icount, code
	}
	if icounts[0] != icounts[1] || codes[0] != codes[1] {
		t.Errorf("predecode changed execution: icount %d vs %d, exit %d vs %d",
			icounts[0], icounts[1], codes[0], codes[1])
	}
}

// TestPredecodeSelfModify: a store into the text segment must be picked
// up by the predecode cache (the ISA allows self-modifying code even if
// nothing we build emits it).
func TestPredecodeSelfModify(t *testing.T) {
	// Overwrite the `li a0, 1` placeholder with `lda a0, 77(zero)`
	// before executing it.
	m, code := run(t, `
	.text
	.globl __start
	.ent __start
__start:
	la t0, patch
	la t1, target
	ldl t2, 0(t0)
	stl t2, 0(t1)
target:
	li a0, 1
	call_pal 0
patch:
	lda a0, 77(zero)
	.end __start
`, Config{})
	_ = m
	if code != 77 {
		t.Errorf("exit code = %d, want 77 (patched instruction not executed)", code)
	}
}

// BenchmarkVMRun measures the interpreter's host-side throughput with
// the predecode cache on (the default) and off (decode every retired
// instruction, the pre-cache behavior).
func BenchmarkVMRun(b *testing.B) {
	src := `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 500000
	clr t1
loop:
	addq t1, t0, t1
	xor t1, t0, t2
	s8addq t2, t1, t3
	cmplt t3, t1, t4
	subq t0, 1, t0
	bne t0, loop
	clr a0
	call_pal 0
	.end __start
`
	exe := build(b, src)
	for _, bc := range []struct {
		name string
		mode Mode
	}{{"superblock", ModeSuperblock}, {"predecode", ModePredecode}, {"decode-each", ModePlain}} {
		b.Run(bc.name, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				m, err := New(exe, Config{Mode: bc.mode})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				insts += m.Icount
			}
			b.ReportMetric(float64(insts)/1e6/b.Elapsed().Seconds(), "Minst/s")
		})
	}
}

// BenchmarkVMRunSuperblock measures superblock dispatch alone on the
// same workload, reusing one machine's warmed block cache across
// iterations via fresh machines (the cache is per-machine, so this also
// prices harvesting: each iteration rebuilds the handful of blocks and
// then runs 3M instructions out of them).
func BenchmarkVMRunSuperblock(b *testing.B) {
	src := `
	.text
	.globl __start
	.ent __start
__start:
	li t0, 500000
	clr t1
loop:
	addq t1, t0, t1
	xor t1, t0, t2
	s8addq t2, t1, t3
	cmplt t3, t1, t4
	subq t0, 1, t0
	bne t0, loop
	clr a0
	call_pal 0
	.end __start
`
	exe := build(b, src)
	var insts uint64
	for i := 0; i < b.N; i++ {
		m, err := New(exe, Config{Mode: ModeSuperblock})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			b.Fatal(err)
		}
		insts += m.Icount
	}
	b.ReportMetric(float64(insts)/1e6/b.Elapsed().Seconds(), "Minst/s")
}
