package atom_test

// Serialized-IR equivalence: for every built-in tool, instrumenting a
// Program decoded from its atom-ir/v1 blob must produce an executable
// byte-identical to instrumenting a freshly lifted Program. This is the
// in-process form of the irsmoke CI gate (ci.sh runs the same
// comparison across processes through `atom -emit-ir` / `atom -ir-in`).

import (
	"bytes"
	"testing"

	"atom"
	"atom/internal/core"
	"atom/internal/om"
	"atom/internal/spec"
	"atom/internal/tools"
)

func TestIRRoundTripAllTools(t *testing.T) {
	exe, err := spec.Build("queens")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := core.LiftBlob(exe)
	if err != nil {
		t.Fatalf("LiftBlob: %v", err)
	}
	opts := core.Options{Verify: true}
	for _, name := range tools.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tool, _ := tools.ByName(name)

			fresh, err := om.Build(exe)
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			want, err := core.InstrumentProgram(fresh, tool, opts)
			if err != nil {
				t.Fatalf("InstrumentProgram(fresh): %v", err)
			}

			dec, err := om.Decode(blob)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			got, err := core.InstrumentProgram(dec, tool, opts)
			if err != nil {
				t.Fatalf("InstrumentProgram(decoded): %v", err)
			}

			if !bytes.Equal(got.Exe.Encode(), want.Exe.Encode()) {
				t.Fatal("decoded-IR instrumentation is not byte-identical to the fresh lift")
			}
		})
	}
}

// TestPublicIRAPI exercises the package-level surface: Lift through the
// cache, EncodeIR/DecodeIR round trip, InstrumentProgram as a drop-in
// for Instrument, and the IR-cache counters.
func TestPublicIRAPI(t *testing.T) {
	exe, err := spec.Build("queens")
	if err != nil {
		t.Fatal(err)
	}
	before := atom.IRCacheStats()
	prog, err := atom.Lift(exe)
	if err != nil {
		t.Fatalf("Lift: %v", err)
	}
	blob, err := atom.EncodeIR(prog)
	if err != nil {
		t.Fatalf("EncodeIR: %v", err)
	}
	dec, err := atom.DecodeIR(blob)
	if err != nil {
		t.Fatalf("DecodeIR: %v", err)
	}
	tool, err := atom.ToolByName("branch")
	if err != nil {
		t.Fatal(err)
	}
	res, err := atom.InstrumentProgram(dec, tool, atom.Options{}, atom.WithVerify(true))
	if err != nil {
		t.Fatalf("InstrumentProgram: %v", err)
	}
	out, err := atom.RunProgram(res.Exe, atom.RunConfig{AnalysisHeapOffset: res.HeapOffset})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.ExitCode != 0 {
		t.Fatalf("instrumented run exited %d", out.ExitCode)
	}
	after := atom.IRCacheStats()
	if after.Misses+after.Hits <= before.Misses+before.Hits {
		t.Fatal("Lift did not touch the IR cache")
	}
}
