package atom

import (
	"bytes"
	"testing"

	"atom/internal/build"
	"atom/internal/core"
	"atom/internal/obs"
	"atom/internal/rtl"
	"atom/internal/vm"
)

// obsTestSrc is a small application with enough structure (a call, a
// loop, memory traffic) to exercise every pipeline stage.
const obsTestSrc = `
#include <stdio.h>
int sum(int *a, int n) {
	int s = 0;
	for (int i = 0; i < n; i++) s = s + a[i];
	return s;
}
int main() {
	int a[8];
	for (int i = 0; i < 8; i++) a[i] = i * 3;
	printf("%d\n", sum(a, 8));
	return 0;
}
`

func buildObsApp(t *testing.T) *Executable {
	t.Helper()
	app, err := BuildProgram(map[string]string{"obsapp.c": obsTestSrc})
	if err != nil {
		t.Fatalf("BuildProgram: %v", err)
	}
	return app
}

// spanIndex makes parent-chain queries over a recorded trace.
type spanIndex struct {
	byID map[uint64]obs.SpanData
}

func indexSpans(spans []obs.SpanData) spanIndex {
	idx := spanIndex{byID: map[uint64]obs.SpanData{}}
	for _, sd := range spans {
		idx.byID[sd.ID] = sd
	}
	return idx
}

// hasAncestor reports whether the span has an ancestor with the name.
func (x spanIndex) hasAncestor(sd obs.SpanData, name string) bool {
	for p := sd.Parent; p != 0; {
		a, ok := x.byID[p]
		if !ok {
			return false
		}
		if a.Name == name {
			return true
		}
		p = a.Parent
	}
	return false
}

func names(spans []obs.SpanData) map[string]int {
	m := map[string]int{}
	for _, sd := range spans {
		m[sd.Name]++
	}
	return m
}

func attrVal(sd obs.SpanData, key string) string {
	for _, a := range sd.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// TestObservabilitySpanTree checks the span hierarchy a cold and a warm
// instrumentation run produce: on a cold run the analysis-routine
// compiles nest inside the tool-image build, and on a warm run the image
// build is absent entirely while the per-program apply still happens.
func TestObservabilitySpanTree(t *testing.T) {
	app := buildObsApp(t)
	tool, err := ToolByName("prof")
	if err != nil {
		t.Fatal(err)
	}
	core.ResetImageCache(build.ScopeMemory)
	rtl.ResetObjectCache(build.ScopeMemory)

	cold := &obs.TraceSink{}
	ctx := obs.New(cold)
	if _, err := core.InstrumentCtx(ctx, app, tool, Options{}); err != nil {
		t.Fatalf("cold InstrumentCtx: %v", err)
	}
	spans := cold.Spans()
	idx := indexSpans(spans)
	have := names(spans)
	for _, want := range []string{"atom.plan", "atom.image.build", "atom.apply", "cache.get",
		"cc.compile", "cc.func", "asm.assemble", "link.link", "link.rebase",
		"om.build", "om.summary", "om.layout", "om.finish", "rtl.objects"} {
		if have[want] == 0 {
			t.Errorf("cold trace: no %q span (have %v)", want, have)
		}
	}
	// Compile spans from the analysis-routine build nest inside the image
	// build; the apply stage is disjoint from it.
	foundNested := false
	for _, sd := range spans {
		switch sd.Name {
		case "cc.compile":
			if idx.hasAncestor(sd, "rtl.objects") && idx.hasAncestor(sd, "atom.image.build") {
				foundNested = true
			}
		case "atom.apply":
			if idx.hasAncestor(sd, "atom.image.build") {
				t.Errorf("atom.apply nested inside atom.image.build")
			}
		case "atom.image.build":
			if out := attrVal(idx.byID[sd.Parent], "outcome"); out != "miss" {
				t.Errorf("cold image build under cache.get outcome %q, want miss", out)
			}
		}
	}
	if !foundNested {
		t.Errorf("no cc.compile span nested under rtl.objects and atom.image.build")
	}

	// Warm run: a fresh context against warm caches.
	warm := &obs.TraceSink{}
	wctx := obs.New(warm)
	if _, err := core.InstrumentCtx(wctx, app, tool, Options{}); err != nil {
		t.Fatalf("warm InstrumentCtx: %v", err)
	}
	wspans := warm.Spans()
	whave := names(wspans)
	if whave["atom.image.build"] != 0 {
		t.Errorf("warm trace: image rebuilt (%d atom.image.build spans)", whave["atom.image.build"])
	}
	if whave["atom.apply"] == 0 {
		t.Errorf("warm trace: no atom.apply span")
	}
	hit := false
	for _, sd := range wspans {
		if sd.Name == "cache.get" && attrVal(sd, "outcome") == "hit" {
			hit = true
		}
	}
	if !hit {
		t.Errorf("warm trace: no cache.get span with outcome=hit")
	}
}

// TestObservabilityCounters checks that pipeline and VM counters flow
// into the context, and that two identical warm runs render their
// counters byte-identically (the determinism contract -bench-json and
// -metrics rely on).
func TestObservabilityCounters(t *testing.T) {
	app := buildObsApp(t)
	tool, err := ToolByName("prof")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(app, tool, Options{}); err != nil { // warm all caches
		t.Fatal(err)
	}

	render := func() ([]byte, uint64) {
		ctx := obs.New()
		res, err := core.InstrumentCtx(ctx, app, tool, Options{})
		if err != nil {
			t.Fatalf("InstrumentCtx: %v", err)
		}
		m, err := vm.New(res.Exe, vm.Config{AnalysisHeapOffset: res.HeapOffset, Obs: ctx})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		counters := ctx.Counters()
		get := func(name string) int64 {
			for _, c := range counters {
				if c.Name == name {
					return c.Value
				}
			}
			return -1
		}
		if got := get("vm.icount"); got != int64(m.Icount) {
			t.Errorf("vm.icount counter = %d, machine Icount = %d", got, m.Icount)
		}
		if get("atom.sites") <= 0 {
			t.Errorf("atom.sites counter = %d, want > 0", get("atom.sites"))
		}
		if get("atom.bytes_marshalled") <= 0 {
			t.Errorf("atom.bytes_marshalled counter = %d, want > 0", get("atom.bytes_marshalled"))
		}
		if get("store.image.hit") <= 0 {
			t.Errorf("store.image.hit counter = %d on a warm run, want > 0", get("store.image.hit"))
		}
		if get("vm.syscalls") <= 0 {
			t.Errorf("vm.syscalls counter = %d, want > 0", get("vm.syscalls"))
		}
		return []byte(obs.FormatCounters(counters)), m.Icount
	}

	out1, ic1 := render()
	out2, ic2 := render()
	if ic1 != ic2 {
		t.Fatalf("icount differs across identical runs: %d vs %d", ic1, ic2)
	}
	if !bytes.Equal(out1, out2) {
		t.Errorf("counter rendering differs across identical warm runs:\n--- run 1\n%s--- run 2\n%s", out1, out2)
	}
}

// TestFailSoftFlush instruments a batch where one application is
// invalid and requires every observability artifact to still be
// complete and well-formed: the failure must neither lose the good
// application's result nor corrupt the trace or metrics streams.
func TestFailSoftFlush(t *testing.T) {
	good, err := rtl.BuildProgram("good.c", obsTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Executable{} // not linked: instrumentation must reject it

	ts := &obs.TraceSink{}
	ms := &obs.MetricsSink{}
	ctx := obs.New(ts, ms)

	tool, err := ToolByName("branch")
	if err != nil {
		t.Fatal(err)
	}
	results, errs := core.InstrumentMany(ctx, []*Executable{good, bad}, core.Tool(tool), core.Options{}, 2)
	if errs[0] != nil || results[0] == nil {
		t.Fatalf("good app failed alongside bad one: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("invalid app instrumented without error")
	}

	// The trace must marshal and parse even though a span subtree ended
	// in failure.
	data, err := ts.MarshalTrace()
	if err != nil {
		t.Fatalf("trace flush after failure: %v", err)
	}
	events, err := obs.ParseTrace(data)
	if err != nil {
		t.Fatalf("trace invalid after failure: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("trace empty after failure")
	}
	// Both instrument attempts must appear: fail-soft means the failing
	// application is traced too, not dropped.
	instruments := 0
	for _, e := range events {
		if e.Name == "atom.instrument" {
			instruments++
		}
	}
	if instruments != 2 {
		t.Errorf("%d atom.instrument spans, want 2 (one per app, including the failure)", instruments)
	}

	// The metrics snapshot must render, and the apply-time histogram
	// must have recorded the successful application.
	var buf bytes.Buffer
	if err := obs.WriteMetrics(&buf, ms, ctx.Counters(), ctx.Histograms()); err != nil {
		t.Fatalf("metrics flush after failure: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("metrics snapshot empty after failure")
	}
	found := false
	for _, h := range ctx.Histograms() {
		if h.Name == "atom.apply_us" && h.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("atom.apply_us histogram missing; histograms: %+v", ctx.Histograms())
	}

	// And the VM run of the surviving result still behaves.
	m, err := vm.New(results[0].Exe, vm.Config{AnalysisHeapOffset: results[0].HeapOffset})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(m.Stdout, []byte("84")) {
		t.Errorf("instrumented app output wrong: %q", m.Stdout)
	}
}
