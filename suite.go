package atom

import (
	"errors"

	"atom/internal/core"
)

// InstrumentSuite applies one tool to many applications concurrently —
// the paper's workflow for Figures 5 and 6, where each tool is run over
// the complete SPEC92 suite. The tool's analysis image is compiled and
// linked once (first worker to need it builds it; the rest share it via
// the content-addressed cache) and only the per-application rewrite fans
// out across workers.
//
// workers bounds the number of applications instrumented at once; zero
// or negative means GOMAXPROCS. Results are returned in input order:
// results[i] corresponds to apps[i] regardless of completion order, so
// parallel and serial runs are interchangeable. If some applications
// fail, their slots are nil and the returned error joins every failure
// (tagged with the application's index); the rest are still
// instrumented.
func InstrumentSuite(apps []*Executable, tool Tool, opts Options, workers int) ([]*Result, error) {
	results, errs := core.InstrumentMany(nil, apps, tool, opts, workers)
	return results, errors.Join(errs...)
}
