package atom_test

import (
	"bytes"
	"testing"

	"atom"
	"atom/internal/build"
	"atom/internal/core"
	"atom/internal/spec"
)

// TestSuiteBuildsImageOnce is the headline acceptance test for the
// staged pipeline: instrumenting the complete 20-program suite with one
// tool compiles and links the tool's analysis image exactly once; every
// other program is a cache hit.
func TestSuiteBuildsImageOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the whole suite")
	}
	core.ResetImageCache(build.ScopeMemory)
	tool, err := atom.ToolByName("cache")
	if err != nil {
		t.Fatal(err)
	}
	suite := spec.Suite()
	apps := make([]*atom.Executable, len(suite))
	for i, p := range suite {
		if apps[i], err = spec.Build(p.Name); err != nil {
			t.Fatal(err)
		}
	}
	results, err := atom.InstrumentSuite(apps, tool, atom.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r == nil || r.Exe == nil {
			t.Fatalf("program %s: no result", suite[i].Name)
		}
	}
	s := atom.ImageCacheStats()
	if s.Builds != 1 {
		t.Errorf("analysis image built %d times for %d programs, want exactly 1", s.Builds, len(apps))
	}
	if want := uint64(len(apps) - 1); s.Hits != want {
		t.Errorf("cache hits = %d, want %d (one per remaining program)", s.Hits, want)
	}
}

// TestInstrumentSuiteParallelMatchesSerial: fanning programs across
// workers must produce byte-identical executables to one-at-a-time
// instrumentation, for several tools at once. Run under -race this is
// also the data-race acceptance test for the shared image cache, the
// runtime-library cache, and the side-effect-free OM build.
func TestInstrumentSuiteParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("instruments 4 programs with 3 tools twice")
	}
	programs := []string{"compress", "eqntott", "li", "ear"}
	toolNames := []string{"branch", "cache", "prof"}

	apps := make([]*atom.Executable, len(programs))
	for i, name := range programs {
		var err error
		if apps[i], err = spec.Build(name); err != nil {
			t.Fatal(err)
		}
	}

	type outcome struct{ text, data []byte }
	serial := map[string][]outcome{}
	core.ResetImageCache(build.ScopeMemory)
	for _, tn := range toolNames {
		tool, err := atom.ToolByName(tn)
		if err != nil {
			t.Fatal(err)
		}
		for _, app := range apps {
			res, err := atom.Instrument(app, tool, atom.Options{})
			if err != nil {
				t.Fatalf("serial %s: %v", tn, err)
			}
			serial[tn] = append(serial[tn], outcome{res.Exe.Text, res.Exe.Data})
		}
	}

	// Now in parallel from a cold cache, all three tools concurrently.
	core.ResetImageCache(build.ScopeMemory)
	done := make(chan error, len(toolNames))
	parallel := make([][]*atom.Result, len(toolNames))
	for ti, tn := range toolNames {
		go func(ti int, tn string) {
			tool, err := atom.ToolByName(tn)
			if err != nil {
				done <- err
				return
			}
			results, err := atom.InstrumentSuite(apps, tool, atom.Options{}, 4)
			if err != nil {
				done <- err
				return
			}
			parallel[ti] = results
			done <- nil
		}(ti, tn)
	}
	for range toolNames {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	for ti, tn := range toolNames {
		for i := range apps {
			got := parallel[ti][i]
			want := serial[tn][i]
			if !bytes.Equal(got.Exe.Text, want.text) || !bytes.Equal(got.Exe.Data, want.data) {
				t.Errorf("%s/%s: parallel output differs from serial", tn, programs[i])
			}
		}
	}
	if s := atom.ImageCacheStats(); s.Builds != uint64(len(toolNames)) {
		t.Errorf("parallel run built %d images, want %d (one per tool)", s.Builds, len(toolNames))
	}
}
