package atom_test

// Differential tests for the VM dispatch ladder: every mode — plain
// decode-each, predecode, and the trace-linked superblock cache — must
// retire bit-identical architectural state, for every tool's
// instrumented output and for the deterministic profiler's reports.

import (
	"bytes"
	"reflect"
	"testing"

	"atom"
	"atom/internal/prof"
	"atom/internal/vm"
)

// vmModeWorkload is a small but branchy program: nested loops, calls,
// loads/stores through a global array, and conditional paths, so every
// superblock shape (guard exits, fall-through links, call terminators)
// is exercised under instrumentation.
const vmModeWorkload = `
#include <stdio.h>

long acc[32];

long mix(long x, long y) {
	if (x & 1) return x * 3 + y;
	return x - y;
}

int main() {
	long i;
	long j;
	long s = 0;
	for (i = 0; i < 64; i++) {
		for (j = 0; j < 8; j++) {
			acc[(i + j) & 31] += mix(i, j);
		}
		if (acc[i & 31] > 100) s += 1;
		else s -= 1;
	}
	for (i = 0; i < 32; i++) s += acc[i];
	printf("s=%d\n", s);
	return 0;
}
`

var vmModes = []struct {
	name string
	mode atom.VMMode
}{
	{"plain", atom.VMPlain},
	{"predecode", atom.VMPredecode},
	{"superblock", atom.VMSuperblock},
}

// TestVMModeDifferentialAllTools instruments the workload with every
// built-in tool and runs each output under all three dispatch modes:
// exit code, stdout, every report file, and every machine counter must
// match the plain decode-each loop exactly.
func TestVMModeDifferentialAllTools(t *testing.T) {
	app, err := atom.BuildProgram(map[string]string{"app.c": vmModeWorkload})
	if err != nil {
		t.Fatal(err)
	}

	run := func(exe *atom.Executable, heapOff uint64, mode atom.VMMode) *atom.RunResult {
		t.Helper()
		out, err := atom.RunProgram(exe, atom.RunConfig{
			AnalysisHeapOffset: heapOff,
		}, atom.WithVMMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	check := func(t *testing.T, exe *atom.Executable, heapOff uint64) {
		t.Helper()
		want := run(exe, heapOff, atom.VMPlain)
		for _, m := range vmModes[1:] {
			got := run(exe, heapOff, m.mode)
			if got.ExitCode != want.ExitCode {
				t.Errorf("%s: exit code %d, plain %d", m.name, got.ExitCode, want.ExitCode)
			}
			if !bytes.Equal(got.Stdout, want.Stdout) {
				t.Errorf("%s: stdout diverges:\n%s\n-- plain --\n%s", m.name, got.Stdout, want.Stdout)
			}
			if !reflect.DeepEqual(got.Files, want.Files) {
				t.Errorf("%s: report files diverge", m.name)
			}
			if got.Icount != want.Icount || got.Loads != want.Loads ||
				got.Stores != want.Stores || got.Unaligned != want.Unaligned ||
				got.Syscalls != want.Syscalls {
				t.Errorf("%s: counters {icount %d loads %d stores %d unaligned %d syscalls %d}, plain {%d %d %d %d %d}",
					m.name, got.Icount, got.Loads, got.Stores, got.Unaligned, got.Syscalls,
					want.Icount, want.Loads, want.Stores, want.Unaligned, want.Syscalls)
			}
		}
	}

	t.Run("uninstrumented", func(t *testing.T) { check(t, app, 0) })
	for _, tool := range atom.Tools() {
		tool := tool
		t.Run(tool.Name, func(t *testing.T) {
			res, err := atom.Instrument(app, tool, atom.Options{})
			if err != nil {
				t.Fatal(err)
			}
			check(t, res.Exe, res.HeapOffset)
		})
	}
}

// TestVMModeProfilerFoldedIdentical attaches the deterministic sampling
// profiler and compares its folded report byte-for-byte across the
// dispatch ladder. A probe forces per-instruction dispatch, so the
// superblock engine must step aside without perturbing the retirement
// sequence the sampler observes.
func TestVMModeProfilerFoldedIdentical(t *testing.T) {
	app, err := atom.BuildProgram(map[string]string{"app.c": vmModeWorkload})
	if err != nil {
		t.Fatal(err)
	}

	folded := func(mode vm.Mode) []byte {
		t.Helper()
		cfg := vm.Config{FS: map[string][]byte{}, Mode: mode}
		p := prof.New(prof.Options{
			Period: 97, // prime, so samples land mid-block at varied offsets
			Procs:  prof.ProcsFromSymbols(app.Symbols),
		})
		p.Attach(&cfg)
		m, err := vm.New(app, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		p.Flush()
		var buf bytes.Buffer
		if err := p.WriteFolded(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := folded(vm.ModePlain)
	if len(want) == 0 {
		t.Fatal("plain-mode profile is empty; workload too small for the sampling period")
	}
	for _, m := range vmModes[1:] {
		if got := folded(vm.Mode(m.mode)); !bytes.Equal(got, want) {
			t.Errorf("%s: folded profile diverges from plain:\n%s\n-- plain --\n%s", m.name, got, want)
		}
	}
}
